//! The scenario-suite runner: discover `*.scn` files, execute each
//! scenario's grids through the shared sweep engine, evaluate its
//! assertions, and render an aggregated pass/fail report (optionally
//! diffed against a committed baseline).
//!
//! This is the engine behind `doall test --suite <dir>` and the thin
//! experiment loader in [`crate::experiments`]. Determinism contract:
//! discovery sorts paths, cells are seeded from each scenario's own grid
//! spec (never from file order or execution order), and the merged
//! [`ResultSet`] is byte-identical across worker counts, shard sizes,
//! and directory-listing order.

use crate::compare::Comparison;
use crate::experiments::derive_by_name;
use crate::grid::Cell;
use crate::resultset::{Record, ResultSet};
use crate::scenario::Scenario;
use crate::sweep::{default_threads, run_cells, SweepConfig};
use crate::Table;
use doall_sim::DEFAULT_MAX_TICKS;
use std::fmt;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// How to execute a suite (the flag subset that affects scenario runs).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SuiteConfig {
    /// Run each scenario's smoke grids instead of the full grids.
    pub smoke: bool,
    /// Worker threads (`None` = available parallelism). Wall-clock only;
    /// never results.
    pub threads: Option<usize>,
    /// Replicates per shard (`None` = auto). Wall-clock only.
    pub shard_size: Option<u64>,
    /// Tick-cutoff override; `None` uses each scenario's own `max_ticks`
    /// (or the simulator default).
    pub max_ticks: Option<u64>,
}

/// Recursively discovers every `*.scn` file under `dir`, in sorted path
/// order — so suite output is independent of directory-listing order.
///
/// # Errors
///
/// Returns a message when `dir` is unreadable or contains no scenarios.
pub fn discover(dir: &Path) -> Result<Vec<PathBuf>, String> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
        let entries =
            std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
            let path = entry.path();
            if path.is_dir() {
                walk(&path, out)?;
            } else if path.extension().is_some_and(|ext| ext == "scn") {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut paths = Vec::new();
    walk(dir, &mut paths)?;
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no *.scn files under {}", dir.display()));
    }
    Ok(paths)
}

/// Parses one scenario file, checking its derive hook exists.
///
/// # Errors
///
/// Returns `"<path>: line N: <msg>"`-style messages.
pub fn load_file(path: &Path) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let scn = Scenario::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    if let Some(name) = &scn.derive {
        if derive_by_name(name).is_none() {
            return Err(format!(
                "{}: unknown derive hook `{name}` (see doall_bench::experiments::DERIVE_HOOKS)",
                path.display()
            ));
        }
    }
    for grid in scn.grids.iter().chain(scn.smoke.iter()) {
        grid.validate()
            .map_err(|e| format!("{}: invalid grid `{grid}`: {e}", path.display()))?;
    }
    Ok(scn)
}

/// Discovers and parses every scenario under `dir` (sorted path order),
/// rejecting duplicate ids.
///
/// # Errors
///
/// Returns the first discovery, parse, validation, or duplicate-id
/// problem.
pub fn load_dir(dir: &Path) -> Result<Vec<Scenario>, String> {
    let mut scenarios = Vec::new();
    let mut seen: std::collections::BTreeMap<String, PathBuf> = std::collections::BTreeMap::new();
    for path in discover(dir)? {
        let scn = load_file(&path)?;
        if let Some(first) = seen.insert(scn.id.clone(), path.clone()) {
            return Err(format!(
                "duplicate scenario id `{}`: {} and {}",
                scn.id,
                first.display(),
                path.display()
            ));
        }
        scenarios.push(scn);
    }
    Ok(scenarios)
}

/// Why an assertion failed.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureKind {
    /// The comparison evaluated and did not hold; `cell` names the exact
    /// offending cell for per-cell assertions (`None` for aggregates).
    Violated {
        /// `algo=… adversary=… backend=… p=… t=… d=… seeds=… seed=…`.
        cell: Option<String>,
        /// Observed left-hand value.
        lhs: f64,
        /// Observed right-hand value.
        rhs: f64,
    },
    /// The assertion evaluated on zero cells — every cell was filtered
    /// out, guarded off, or missing a referenced metric. Almost always a
    /// typo in a metric name or selector, so it fails rather than
    /// silently passing.
    NoMatch,
}

/// One failed assertion, with everything needed to reproduce it.
#[derive(Debug, Clone, PartialEq)]
pub struct AssertionFailure {
    /// Scenario id.
    pub scenario: String,
    /// The assertion, rendered canonically.
    pub assertion: String,
    /// What went wrong.
    pub kind: FailureKind,
}

impl fmt::Display for AssertionFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            FailureKind::Violated {
                cell: Some(cell),
                lhs,
                rhs,
            } => write!(
                f,
                "{}: `{}` violated at ({cell}): observed {lhs} vs {rhs}",
                self.scenario, self.assertion
            ),
            FailureKind::Violated {
                cell: None,
                lhs,
                rhs,
            } => write!(
                f,
                "{}: `{}` violated: observed {lhs} vs {rhs}",
                self.scenario, self.assertion
            ),
            FailureKind::NoMatch => write!(
                f,
                "{}: `{}` matched no cells (typo in a metric or selector?)",
                self.scenario, self.assertion
            ),
        }
    }
}

/// The exact-cell label required of failure reports: everything needed
/// to re-run the offending cell, including its derived seed.
#[must_use]
pub fn cell_label(cell: &Cell) -> String {
    format!(
        "algo={} adversary={} backend={} p={} t={} d={} seeds={} seed={:#018x}",
        cell.algo,
        cell.adversary,
        cell.effective_backend(),
        cell.p,
        cell.t,
        cell.d,
        cell.seeds,
        cell.cell_seed
    )
}

/// One scenario's execution: its records plus assertion results.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Scenario id.
    pub id: String,
    /// Cells executed.
    pub cells: usize,
    /// Assertion evaluations performed (per-cell checks count each cell).
    pub checks: usize,
    /// Every failed assertion.
    pub failures: Vec<AssertionFailure>,
    /// The scenario's records (measured + derived metrics), in cell
    /// order — merged into the suite's [`ResultSet`] by [`run_suite`].
    pub records: Vec<Record>,
}

/// Runs one scenario under `cfg`: expands and validates its grids, runs
/// the cells through the sweep engine, applies the derive hook, and
/// evaluates every assertion.
///
/// # Errors
///
/// Returns a rendered message for invalid grids, unknown derive hooks,
/// and sweep failures (bad keys, tick-cutoff hits).
pub fn run_scenario(scn: &Scenario, cfg: &SuiteConfig) -> Result<ScenarioOutcome, String> {
    let derive = match &scn.derive {
        Some(name) => Some(
            derive_by_name(name)
                .ok_or_else(|| format!("{}: unknown derive hook `{name}`", scn.id))?,
        ),
        None => None,
    };
    let mut cells = Vec::new();
    for grid in scn.grids_for(cfg.smoke) {
        grid.validate().map_err(|e| format!("{}: {e}", scn.id))?;
        cells.extend(grid.cells());
    }
    let sweep = SweepConfig {
        threads: cfg.threads.unwrap_or_else(default_threads),
        max_ticks: cfg.max_ticks.or(scn.max_ticks).unwrap_or(DEFAULT_MAX_TICKS),
        trace: scn.trace,
        shard_size: cfg.shard_size,
    };
    let measurements = run_cells(&cells, &sweep).map_err(|e| format!("{}: {e}", scn.id))?;
    let mut records = Vec::with_capacity(measurements.len());
    for m in measurements {
        let mut metrics = m.metrics();
        if let Some(derive) = derive {
            derive(&m.cell, &mut metrics);
        }
        records.push(Record {
            experiment: scn.id.clone(),
            cell: m.cell,
            metrics,
        });
    }
    let mut checks = 0usize;
    let mut failures = Vec::new();
    let rows: Vec<(&Cell, &std::collections::BTreeMap<String, f64>)> =
        records.iter().map(|r| (&r.cell, &r.metrics)).collect();
    for assertion in &scn.asserts {
        let mut evaluated = 0usize;
        if assertion.aggregate {
            if let Some(result) = assertion.check_agg(&rows) {
                evaluated += 1;
                checks += 1;
                if let Err((lhs, rhs)) = result {
                    failures.push(AssertionFailure {
                        scenario: scn.id.clone(),
                        assertion: assertion.to_string(),
                        kind: FailureKind::Violated {
                            cell: None,
                            lhs,
                            rhs,
                        },
                    });
                }
            }
        } else {
            for (cell, metrics) in &rows {
                if let Some(result) = assertion.check_cell(cell, metrics) {
                    evaluated += 1;
                    checks += 1;
                    if let Err((lhs, rhs)) = result {
                        failures.push(AssertionFailure {
                            scenario: scn.id.clone(),
                            assertion: assertion.to_string(),
                            kind: FailureKind::Violated {
                                cell: Some(cell_label(cell)),
                                lhs,
                                rhs,
                            },
                        });
                    }
                }
            }
        }
        if evaluated == 0 {
            failures.push(AssertionFailure {
                scenario: scn.id.clone(),
                assertion: assertion.to_string(),
                kind: FailureKind::NoMatch,
            });
        }
    }
    Ok(ScenarioOutcome {
        id: scn.id.clone(),
        cells: records.len(),
        checks,
        failures,
        records,
    })
}

/// One row of the suite report: a scenario's tallies without its records.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSummary {
    /// Scenario id.
    pub id: String,
    /// Cells executed.
    pub cells: usize,
    /// Assertion evaluations performed.
    pub checks: usize,
    /// Every failed assertion.
    pub failures: Vec<AssertionFailure>,
}

/// The aggregated result of a suite run: per-scenario tallies, the
/// merged result set (ready for emission or baseline comparison), and an
/// optional baseline comparison the caller attaches.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteReport {
    /// Per-scenario tallies, in run (sorted-path) order.
    pub scenarios: Vec<ScenarioSummary>,
    /// All records, merged in run order (`mode` = `"smoke"` / `"full"`).
    pub results: ResultSet,
    /// Baseline comparison, when `--baseline` was given.
    pub comparison: Option<Comparison>,
}

/// Runs every scenario and merges the outcomes into a [`SuiteReport`]
/// (with no baseline comparison attached yet).
///
/// # Errors
///
/// Returns the first scenario-level failure ([`run_scenario`]'s errors);
/// assertion failures are *not* errors — they land in the report.
pub fn run_suite(scenarios: &[Scenario], cfg: &SuiteConfig) -> Result<SuiteReport, String> {
    let mut summaries = Vec::with_capacity(scenarios.len());
    let mut records = Vec::new();
    for scn in scenarios {
        let outcome = run_scenario(scn, cfg)?;
        summaries.push(ScenarioSummary {
            id: outcome.id,
            cells: outcome.cells,
            checks: outcome.checks,
            failures: outcome.failures,
        });
        records.extend(outcome.records);
    }
    Ok(SuiteReport {
        scenarios: summaries,
        results: ResultSet {
            mode: if cfg.smoke { "smoke" } else { "full" }.to_string(),
            records,
        },
        comparison: None,
    })
}

impl SuiteReport {
    /// Every assertion failure across the suite, in run order.
    pub fn failures(&self) -> impl Iterator<Item = &AssertionFailure> {
        self.scenarios.iter().flat_map(|s| s.failures.iter())
    }

    /// `true` when every assertion held and the baseline comparison (if
    /// any) was clean — the exit-0 condition.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.failures().next().is_none()
            && self.comparison.as_ref().is_none_or(Comparison::is_clean)
    }

    /// Renders the aggregated pass/fail table plus failure details and
    /// the baseline summary. Deterministic for a given report.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let mut table = Table::new(vec![
            "scenario".to_string(),
            "cells".to_string(),
            "checks".to_string(),
            "failures".to_string(),
            "status".to_string(),
        ]);
        let (mut cells, mut checks, mut failed) = (0usize, 0usize, 0usize);
        for s in &self.scenarios {
            cells += s.cells;
            checks += s.checks;
            failed += s.failures.len();
            table.row(vec![
                s.id.clone(),
                s.cells.to_string(),
                s.checks.to_string(),
                s.failures.len().to_string(),
                if s.failures.is_empty() {
                    "pass"
                } else {
                    "FAIL"
                }
                .to_string(),
            ]);
        }
        table.row(vec![
            "total".to_string(),
            cells.to_string(),
            checks.to_string(),
            failed.to_string(),
            if failed == 0 { "pass" } else { "FAIL" }.to_string(),
        ]);
        out.push_str(&table.render());
        for failure in self.failures() {
            let _ = writeln!(out, "FAIL {failure}");
        }
        if let Some(cmp) = &self.comparison {
            let _ = writeln!(
                out,
                "baseline: {} (exact={} drift={} added={} removed={})",
                if cmp.is_clean() { "clean" } else { "DRIFT" },
                cmp.exact,
                cmp.count(crate::compare::CellStatus::Drift),
                cmp.count(crate::compare::CellStatus::Added),
                cmp.count(crate::compare::CellStatus::Removed),
            );
        }
        out
    }

    /// Renders the report as deterministic JSON (suite tallies, failure
    /// strings, and the clean verdict — not the full result set, which
    /// has its own schema via [`ResultSet::to_json`]).
    #[must_use]
    pub fn render_json(&self) -> String {
        use crate::resultset::json_escape;
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"mode\": \"{}\",", json_escape(&self.results.mode));
        let _ = writeln!(out, "  \"clean\": {},", self.is_clean());
        out.push_str("  \"scenarios\": [\n");
        for (i, s) in self.scenarios.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"id\": \"{}\", \"cells\": {}, \"checks\": {}, \"failures\": [",
                json_escape(&s.id),
                s.cells,
                s.checks
            );
            for (j, f) in s.failures.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}\"{}\"",
                    if j == 0 { "" } else { ", " },
                    json_escape(&f.to_string())
                );
            }
            out.push_str("]}");
            out.push_str(if i + 1 == self.scenarios.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(text: &str) -> Scenario {
        Scenario::parse(text).unwrap()
    }

    fn smoke_cfg() -> SuiteConfig {
        SuiteConfig {
            smoke: true,
            threads: Some(2),
            ..SuiteConfig::default()
        }
    }

    #[test]
    fn run_scenario_checks_assertions_per_cell() {
        let scn = scenario(
            "id = tiny\n\
             grid = algos=soloall,paran1 advs=unit shapes=4x8 ds=1 seeds=1 seed=0\n\
             derive = ratio_quadratic\n\
             assert work >= t\n\
             assert ratio_quadratic > 0\n",
        );
        let outcome = run_scenario(&scn, &smoke_cfg()).unwrap();
        assert_eq!(outcome.cells, 2);
        assert_eq!(outcome.checks, 4, "2 assertions × 2 cells");
        assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
        assert!(outcome.records.iter().all(|r| r.experiment == "tiny"));
    }

    #[test]
    fn violated_assertions_name_the_exact_cell() {
        let scn = scenario(
            "id = tiny\n\
             grid = algos=soloall advs=unit shapes=4x8 ds=1 seeds=1 seed=0\n\
             assert work <= 1\n",
        );
        let outcome = run_scenario(&scn, &smoke_cfg()).unwrap();
        assert_eq!(outcome.failures.len(), 1);
        let msg = outcome.failures[0].to_string();
        assert!(
            msg.contains("tiny: `assert work <= 1` violated at ("),
            "{msg}"
        );
        for needle in [
            "algo=soloall",
            "adversary=unit",
            "backend=sim",
            "p=4",
            "t=8",
            "d=1",
            "seeds=1",
            "seed=0x",
            "observed ",
        ] {
            assert!(msg.contains(needle), "`{msg}` lacks `{needle}`");
        }
    }

    #[test]
    fn assertions_matching_no_cells_fail_the_scenario() {
        let scn = scenario(
            "id = tiny\n\
             grid = algos=soloall advs=unit shapes=4x8 ds=1 seeds=1 seed=0\n\
             assert no_such_metric >= 1\n\
             assert [algo=padet] work >= t\n\
             assert agg max(no_such_metric) >= 1\n",
        );
        let outcome = run_scenario(&scn, &smoke_cfg()).unwrap();
        assert_eq!(outcome.failures.len(), 3);
        assert!(outcome
            .failures
            .iter()
            .all(|f| matches!(f.kind, FailureKind::NoMatch)));
        assert!(outcome.failures[0].to_string().contains("matched no cells"));
    }

    #[test]
    fn aggregate_assertions_evaluate_once() {
        let scn = scenario(
            "id = tiny\n\
             grid = algos=soloall,paran1 advs=unit shapes=4x8 ds=1 seeds=1 seed=0\n\
             assert agg min(work) >= 10000\n",
        );
        let outcome = run_scenario(&scn, &smoke_cfg()).unwrap();
        assert_eq!(outcome.checks, 1);
        assert_eq!(outcome.failures.len(), 1);
        assert!(matches!(
            outcome.failures[0].kind,
            FailureKind::Violated { cell: None, .. }
        ));
    }

    #[test]
    fn suite_runs_merge_records_in_scenario_order() {
        let a = scenario(
            "id = a\ngrid = algos=soloall advs=unit shapes=2x4 ds=1 seeds=1 seed=0\n\
             assert work >= t\n",
        );
        let b = scenario(
            "id = b\ngrid = algos=soloall advs=unit shapes=2x4 ds=1 seeds=1 seed=0\n\
             assert work >= t + 1000\n",
        );
        let report = run_suite(&[a, b], &smoke_cfg()).unwrap();
        assert_eq!(report.results.mode, "smoke");
        assert_eq!(report.scenarios.len(), 2);
        assert_eq!(report.results.records.len(), 2);
        assert_eq!(report.results.records[0].experiment, "a");
        assert_eq!(report.results.records[1].experiment, "b");
        assert!(!report.is_clean(), "b's assertion fails");
        let table = report.render_table();
        assert!(table.contains(" a |"), "{table}");
        assert!(table.contains("FAIL"), "{table}");
        assert!(table.contains("total"), "{table}");
        let json = report.render_json();
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"id\": \"b\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn discovery_is_sorted_and_recursive() {
        let dir = std::env::temp_dir().join(format!("doall_suite_disc_{}", std::process::id()));
        let sub = dir.join("nested");
        std::fs::create_dir_all(&sub).unwrap();
        let scn = |id: &str| {
            format!("id = {id}\ngrid = algos=soloall advs=unit shapes=2x4 ds=1 seeds=1 seed=0\n")
        };
        // Create in non-sorted order; discovery must sort by path.
        std::fs::write(dir.join("b.scn"), scn("b")).unwrap();
        std::fs::write(sub.join("c.scn"), scn("c")).unwrap();
        std::fs::write(dir.join("a.scn"), scn("a")).unwrap();
        std::fs::write(dir.join("ignored.txt"), "not a scenario").unwrap();
        let paths = discover(&dir).unwrap();
        assert_eq!(paths.len(), 3);
        assert!(paths[0].ends_with("a.scn"));
        assert!(paths[1].ends_with("b.scn"));
        assert!(paths[2].ends_with("nested/c.scn"));
        let ids: Vec<String> = load_dir(&dir)
            .unwrap()
            .iter()
            .map(|s| s.id.clone())
            .collect();
        assert_eq!(ids, ["a", "b", "c"]);
        // A duplicate id anywhere in the tree is an error.
        std::fs::write(sub.join("d.scn"), scn("a")).unwrap();
        let e = load_dir(&dir).unwrap_err();
        assert!(e.contains("duplicate scenario id `a`"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_errors_name_the_file_and_line() {
        let dir = std::env::temp_dir().join(format!("doall_suite_load_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.scn");
        std::fs::write(&path, "id = bad\ngrid = algos=frob shapes=2x4\n").unwrap();
        let e = load_file(&path).unwrap_err();
        assert!(e.contains("bad.scn"), "{e}");
        assert!(e.contains("line 2"), "{e}");
        std::fs::write(
            &path,
            "id = bad\ngrid = algos=soloall shapes=2x4\nderive = frob\n",
        )
        .unwrap();
        let e = load_file(&path).unwrap_err();
        assert!(e.contains("unknown derive hook `frob`"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(discover(Path::new("/nonexistent-doall")).is_err());
    }
}
