//! Shared harness for the experiment binaries (E1–E12 in DESIGN.md):
//! Markdown table printing, seed-averaged runs, and the standard
//! algorithm roster.
//!
//! Each experiment is a binary under `src/bin/`; run them all with
//! `cargo run --release -p doall-bench --bin all_experiments` to
//! regenerate the tables recorded in EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use doall_algorithms::{Algorithm, Da, PaDet, PaRan1, PaRan2, SoloAll};
use doall_core::{Instance, RunReport};
use doall_sim::{Adversary, Simulation};

/// A Markdown table accumulated row by row and printed to stdout.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Prints the table as GitHub-flavoured Markdown.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            println!("| {} |", padded.join(" | "));
        };
        line(&self.headers);
        let dashes: Vec<String> = widths.iter().map(|w| format!("{:->w$}", "-")).collect();
        println!("|-{}-|", dashes.join("-|-"));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Summary statistics of a set of runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Mean work across the runs.
    pub mean_work: f64,
    /// Maximum work across the runs.
    pub max_work: u64,
    /// Mean message count across the runs.
    pub mean_messages: f64,
    /// Number of runs aggregated.
    pub runs: usize,
}

/// Runs `algo_for(seed)` against `adversary_for(seed)` for each seed in
/// `0..seeds`, asserting completion, and aggregates work/messages.
///
/// # Panics
///
/// Panics if `seeds == 0` or any run fails to complete (experiments must
/// not silently average over broken executions).
#[must_use]
pub fn seed_average(
    instance: Instance,
    seeds: u64,
    algo_for: impl Fn(u64) -> Box<dyn Algorithm>,
    adversary_for: impl Fn(u64) -> Box<dyn Adversary>,
) -> Stats {
    assert!(seeds > 0, "need at least one seed");
    let mut total_work = 0u64;
    let mut max_work = 0u64;
    let mut total_msgs = 0u64;
    for seed in 0..seeds {
        let report = run_once(instance, &*algo_for(seed), adversary_for(seed));
        total_work += report.work;
        max_work = max_work.max(report.work);
        total_msgs += report.messages;
    }
    Stats {
        mean_work: total_work as f64 / seeds as f64,
        max_work,
        mean_messages: total_msgs as f64 / seeds as f64,
        runs: seeds as usize,
    }
}

/// Runs one execution to completion and returns the report.
///
/// # Panics
///
/// Panics if the run does not complete within the generous tick budget.
#[must_use]
pub fn run_once(
    instance: Instance,
    algo: &dyn Algorithm,
    adversary: Box<dyn Adversary>,
) -> RunReport {
    let report = Simulation::new(instance, algo.spawn(instance), adversary)
        .max_ticks(50_000_000)
        .run();
    assert!(
        report.completed,
        "{} failed to complete on p={} t={}: {report}",
        algo.name(),
        instance.processors(),
        instance.tasks()
    );
    report
}

/// The standard roster used by the sweep experiments.
#[must_use]
pub fn roster(instance: Instance, seed: u64) -> Vec<Box<dyn Algorithm>> {
    vec![
        Box::new(SoloAll::new()),
        Box::new(Da::with_default_schedules(2, seed)),
        Box::new(Da::with_default_schedules(3, seed)),
        Box::new(PaRan1::new(seed)),
        Box::new(PaRan2::new(seed)),
        Box::new(PaDet::random_for(instance, seed)),
    ]
}

/// Prints an experiment header in the format EXPERIMENTS.md collates.
pub fn section(id: &str, reproduces: &str, setup: &str) {
    println!("\n## {id} — {reproduces}\n");
    println!("{setup}\n");
}

/// Formats a float compactly for table cells.
#[must_use]
pub fn fmt(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doall_sim::adversary::UnitDelay;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        t.print(); // smoke: must not panic
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1"]);
    }

    #[test]
    fn seed_average_aggregates() {
        let instance = Instance::new(2, 6).unwrap();
        let stats = seed_average(
            instance,
            3,
            |s| Box::new(PaRan1::new(s)),
            |_| Box::new(UnitDelay),
        );
        assert_eq!(stats.runs, 3);
        assert!(stats.mean_work >= 6.0);
        assert!(stats.max_work as f64 >= stats.mean_work);
    }

    #[test]
    fn fmt_scales() {
        assert_eq!(fmt(0.5), "0.500");
        assert_eq!(fmt(42.123), "42.1");
        assert_eq!(fmt(12345.6), "12346");
    }

    #[test]
    fn roster_has_six_algorithms() {
        let instance = Instance::new(4, 8).unwrap();
        assert_eq!(roster(instance, 0).len(), 6);
    }
}
