//! The experiment harness: declarative scenario grids, a parallel sweep
//! engine, machine-readable results, and the scenario-suite runner that
//! executes the committed `scenarios/*.scn` files (every `e01`–`e17`
//! experiment is such a file — data, not Rust).
//!
//! Each experiment is a thin binary under `src/bin/` that calls
//! [`experiment_main`]; `all_experiments` runs the whole committed suite
//! in-process via [`suite_main`], and `doall test --suite <dir>` runs
//! any scenario directory. All binaries share the same flags (`--smoke`,
//! `--json`, `--csv`, `--threads N`, `--shard-size N`, `--out PATH`,
//! `--max-ticks N`) — see [`output::FLAGS_USAGE`].
//!
//! ```text
//! cargo run --release -p doall-bench --bin all_experiments            # full tables
//! cargo run --release -p doall-bench --bin all_experiments -- \
//!     --smoke --json --out bench-smoke.json                          # the CI artifact
//! ```
//!
//! The module split mirrors the pipeline: [`scenario`] (the `*.scn` file
//! format: grids + assertions) → [`grid`] (what to run) → [`sweep`] (run
//! it, in parallel, deterministically) → [`resultset`] (the record
//! schema and its deterministic JSON/CSV renderers) → [`output`] (which
//! rendering, and where it goes), with [`suite`] orchestrating
//! discovery, assertion evaluation, and the pass/fail report, and
//! [`experiments`] holding the named derived-metric hooks plus the
//! binary entry points. On top of the per-run pipeline sit the
//! trajectory modules: [`mod@compare`] diffs two result sets, [`history`]
//! keeps the append-only `HISTORY.jsonl` ledger (one entry per landed
//! PR), and [`trend`] turns the ledger into sparklines, slopes, and the
//! cumulative band gate behind `doall trend`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod experiments;
pub mod grid;
pub mod history;
pub mod output;
pub mod resultset;
pub mod scenario;
pub mod suite;
pub mod sweep;
pub mod trend;

pub use compare::{
    compare, compare_files, load_result_set, parse_result_set, preserve_measured_values,
    BaselineSet, CellDiff, CellKey, CellStatus, CompareError, Comparison, MetricDelta,
    DIFF_SCHEMA_VERSION,
};
pub use experiments::{derive_by_name, experiment_main, scenarios_dir, suite_main, DeriveFn};
pub use grid::{AdversarySpec, Cell, CrashStagger, Grid, GridError};
pub use history::{
    append_entry, load_history, parse_entry, parse_history, History, HistoryEntry, HistoryError,
    HISTORY_SCHEMA_VERSION,
};
pub use output::{Flags, Format, Record, ResultSet, SCHEMA_VERSION};
pub use resultset::{canonical_adversary, parse_json, Json, ResultSetError};
pub use scenario::{Assertion, Scenario, ScenarioError};
pub use suite::{
    load_dir, run_scenario, run_suite, AssertionFailure, ScenarioOutcome, SuiteConfig, SuiteReport,
};
pub use sweep::{
    effective_shard_size, run_cells, run_cells_with_stats, CellMeasurement, SweepConfig,
    SweepError, SweepStats,
};
pub use trend::{
    analyze, parse_band, slope, sparkline, Band, BandViolation, MetricTrend, TrendConfig,
    TrendReport, TREND_SCHEMA_VERSION,
};

/// A Markdown table accumulated row by row and printed to stdout.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as GitHub-flavoured Markdown (one trailing
    /// newline per row; deterministic for identical content).
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            out.push_str(&format!("| {} |\n", padded.join(" | ")));
        };
        line(&self.headers, &mut out);
        let dashes: Vec<String> = widths.iter().map(|w| format!("{:->w$}", "-")).collect();
        out.push_str(&format!("|-{}-|\n", dashes.join("-|-")));
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Prints the table as GitHub-flavoured Markdown.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Prints an experiment header in the format EXPERIMENTS.md collates.
pub fn section(id: &str, reproduces: &str, setup: &str) {
    println!("\n## {id} — {reproduces}\n");
    println!("{setup}\n");
}

/// Formats a float compactly for table cells.
#[must_use]
pub fn fmt(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        t.print(); // smoke: must not panic
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1"]);
    }

    #[test]
    fn fmt_scales() {
        assert_eq!(fmt(0.5), "0.500");
        assert_eq!(fmt(42.123), "42.1");
        assert_eq!(fmt(12345.6), "12346");
    }
}
