//! The append-only performance ledger behind `doall trend`:
//! `HISTORY.jsonl`, one JSON object per line, one line per landed PR.
//!
//! A snapshot comparator (`doall compare`) can only see one step; the
//! ledger keeps the whole trajectory so trend analysis can catch
//! regressions that drift slowly *inside* per-step tolerance. Each entry
//! holds the commit id it describes, an externally supplied timestamp,
//! the harness throughput of the run, and the full smoke result set —
//! including the measured-only `wall_clock_ms`/runtime-stats series the
//! threads cells carry, which the comparator exempts but the ledger
//! deliberately retains as a timing series.
//!
//! Two invariants:
//!
//! * **Byte determinism** — rendering is sorted (`BTreeMap` cells and
//!   metrics) and float formatting is shortest-round-trip, so
//!   `render ∘ parse ∘ render ≡ render`: re-serializing a ledger never
//!   rewrites history. Appending only ever adds one line.
//! * **No clock reads** — lint rule D002 fences wall-clock access to the
//!   runtime crate, so the ledger never looks at a clock itself: the
//!   timestamp arrives via `doall trend --append … --timestamp`, and
//!   throughput via `--cells-per-sec`.

use crate::resultset::{
    err, json_escape, json_number, parse_json, record_from_json, render_key_record, BaselineSet,
    CellKey, Json, ResultSetError,
};
use std::collections::BTreeMap;
use std::fmt;

/// Version of the ledger line schema; bump on breaking layout changes.
pub const HISTORY_SCHEMA_VERSION: u64 = 1;

/// An error from reading, writing, or interpreting the history ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryError(String);

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for HistoryError {}

impl From<ResultSetError> for HistoryError {
    fn from(e: ResultSetError) -> Self {
        HistoryError(e.to_string())
    }
}

fn herr(msg: impl Into<String>) -> HistoryError {
    HistoryError(msg.into())
}

/// One ledger line: the perf record of one landed PR.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// The commit id the entry describes (ledger key; duplicates are
    /// rejected on append).
    pub commit: String,
    /// Externally supplied timestamp (opaque string; never read from a
    /// clock in here — see the module docs).
    pub timestamp: String,
    /// Harness throughput of the recorded run (cells per second,
    /// measured outside the deterministic core); `NaN` = not recorded,
    /// serialized as `null`.
    pub cells_per_sec: f64,
    /// Mode of the embedded result set (`"smoke"` for the committed
    /// ledger).
    pub mode: String,
    /// `schema_version` of the embedded result set.
    pub result_schema_version: u64,
    /// The run's cells, keyed canonically — same shape as
    /// [`BaselineSet::cells`].
    pub cells: BTreeMap<CellKey, BTreeMap<String, f64>>,
}

impl HistoryEntry {
    /// Builds an entry from a parsed result set plus the externally
    /// supplied provenance fields.
    #[must_use]
    pub fn from_result_set(
        commit: &str,
        timestamp: &str,
        cells_per_sec: f64,
        set: &BaselineSet,
    ) -> Self {
        Self {
            commit: commit.to_string(),
            timestamp: timestamp.to_string(),
            cells_per_sec,
            mode: set.mode.clone(),
            result_schema_version: set.schema_version,
            cells: set.cells.clone(),
        }
    }

    /// Renders the entry as one compact JSON line (no trailing newline).
    /// Deterministic: cells and metrics are sorted, floats print via
    /// shortest-round-trip `Display`, and `backend` is always explicit
    /// (the key is already canonical — there is no legacy spelling to
    /// preserve in the ledger).
    #[must_use]
    pub fn render_line(&self) -> String {
        let mut out = format!(
            "{{\"history_schema_version\": {HISTORY_SCHEMA_VERSION}, \
             \"commit\": \"{}\", \"timestamp\": \"{}\", \"cells_per_sec\": {}, \
             \"mode\": \"{}\", \"result_schema_version\": {}, \"records\": [",
            json_escape(&self.commit),
            json_escape(&self.timestamp),
            json_number(self.cells_per_sec),
            json_escape(&self.mode),
            self.result_schema_version,
        );
        for (i, (key, metrics)) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&render_key_record(key, metrics));
        }
        out.push_str("]}");
        out
    }

    /// Reduces the entry's cells back to a [`BaselineSet`], so ledger
    /// entries can feed `doall compare` directly.
    #[must_use]
    pub fn to_baseline_set(&self) -> BaselineSet {
        BaselineSet {
            schema_version: self.result_schema_version,
            mode: self.mode.clone(),
            cells: self.cells.clone(),
        }
    }
}

/// Parses one ledger line.
///
/// # Errors
///
/// Returns a [`HistoryError`] for malformed JSON, a missing or
/// unsupported `history_schema_version`, structural record problems, or
/// duplicate cells.
pub fn parse_entry(line: &str) -> Result<HistoryEntry, HistoryError> {
    let root = parse_json(line)?;
    if !matches!(root, Json::Object(_)) {
        return Err(herr("history entry: top level is not an object"));
    }
    let get = |key: &str| -> Result<&Json, ResultSetError> {
        root.get(key)
            .ok_or_else(|| err(format!("history entry: missing `{key}`")))
    };
    let version = match get("history_schema_version")? {
        Json::Number(v) if *v == 1.0 => 1u64,
        other => {
            return Err(herr(format!(
                "history entry: unsupported history_schema_version {other:?} \
                 (this build reads version {HISTORY_SCHEMA_VERSION})"
            )));
        }
    };
    debug_assert_eq!(version, HISTORY_SCHEMA_VERSION);
    let as_str = |key: &str| -> Result<String, HistoryError> {
        match get(key)? {
            Json::String(s) => Ok(s.clone()),
            _ => Err(herr(format!("history entry: `{key}` is not a string"))),
        }
    };
    let cells_per_sec = match get("cells_per_sec")? {
        Json::Number(v) => *v,
        Json::Null => f64::NAN,
        _ => return Err(herr("history entry: `cells_per_sec` is not a number")),
    };
    let result_schema_version = match get("result_schema_version")? {
        Json::Number(v) if v.fract() == 0.0 && *v >= 0.0 => {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            {
                *v as u64
            }
        }
        _ => {
            return Err(herr(
                "history entry: `result_schema_version` is not an integer",
            ));
        }
    };
    let records = match get("records")? {
        Json::Array(items) => items,
        _ => return Err(herr("history entry: `records` is not an array")),
    };
    let mut cells: BTreeMap<CellKey, BTreeMap<String, f64>> = BTreeMap::new();
    for (i, record) in records.iter().enumerate() {
        let what = format!("records[{i}]");
        let (key, metrics, raw_adversary) = record_from_json(record, &what)?;
        crate::resultset::insert_cell(&mut cells, key, metrics, &raw_adversary)?;
    }
    Ok(HistoryEntry {
        commit: as_str("commit")?,
        timestamp: as_str("timestamp")?,
        cells_per_sec,
        mode: as_str("mode")?,
        result_schema_version,
        cells,
    })
}

/// A parsed ledger: entries in file (= chronological append) order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct History {
    /// Entries in append order — oldest first.
    pub entries: Vec<HistoryEntry>,
}

/// Parses a whole ledger (JSONL: one entry per line; blank lines are
/// ignored).
///
/// # Errors
///
/// Returns a [`HistoryError`] naming the 1-based line of the first
/// malformed entry, or any duplicate commit id.
pub fn parse_history(text: &str) -> Result<History, HistoryError> {
    let mut entries = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let entry = parse_entry(line).map_err(|e| herr(format!("line {}: {e}", idx + 1)))?;
        if entries
            .iter()
            .any(|e: &HistoryEntry| e.commit == entry.commit)
        {
            return Err(herr(format!(
                "line {}: duplicate commit `{}` in ledger",
                idx + 1,
                entry.commit
            )));
        }
        entries.push(entry);
    }
    Ok(History { entries })
}

/// Reads and parses a ledger file.
///
/// # Errors
///
/// Returns a [`HistoryError`] for I/O problems or malformed content.
pub fn load_history(path: &str) -> Result<History, HistoryError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| herr(format!("cannot read {path}: {e}")))?;
    parse_history(&text).map_err(|e| herr(format!("{path}: {e}")))
}

/// Appends one entry to the ledger at `path`, creating the file when it
/// does not exist yet (the seeding flow). The existing content is parsed
/// first: a malformed ledger or a duplicate commit id is an error, and
/// nothing is written.
///
/// Returns the updated in-memory ledger (existing entries plus the new
/// one), so callers can analyze without re-reading the file.
///
/// # Errors
///
/// Returns a [`HistoryError`] for I/O problems, a malformed existing
/// ledger, or a duplicate commit id.
pub fn append_entry(path: &str, entry: &HistoryEntry) -> Result<History, HistoryError> {
    let existing = match std::fs::read_to_string(path) {
        Ok(text) => parse_history(&text).map_err(|e| herr(format!("{path}: {e}")))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => History::default(),
        Err(e) => return Err(herr(format!("cannot read {path}: {e}"))),
    };
    if existing.entries.iter().any(|e| e.commit == entry.commit) {
        return Err(herr(format!(
            "{path}: commit `{}` is already in the ledger (one entry per landed PR)",
            entry.commit
        )));
    }
    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| herr(format!("cannot open {path} for append: {e}")))?;
    writeln!(file, "{}", entry.render_line())
        .map_err(|e| herr(format!("cannot append to {path}: {e}")))?;
    let mut updated = existing;
    updated.entries.push(entry.clone());
    Ok(updated)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry(commit: &str, work: f64) -> HistoryEntry {
        let mut cells = BTreeMap::new();
        for (backend, wall) in [("sim", 0.0), ("threads", 3.25)] {
            let key = CellKey {
                experiment: "e01".to_string(),
                algo: "soloall".to_string(),
                adversary: "crash:7".to_string(),
                backend: backend.to_string(),
                p: 4,
                t: 16,
                d: 1,
                seeds: 2,
            };
            let mut metrics = BTreeMap::new();
            metrics.insert("mean_work".to_string(), work);
            metrics.insert("wall_clock_ms".to_string(), wall);
            cells.insert(key, metrics);
        }
        HistoryEntry {
            commit: commit.to_string(),
            timestamp: "2026-08-08T00:00:00Z".to_string(),
            cells_per_sec: 120.5,
            mode: "smoke".to_string(),
            result_schema_version: 1,
            cells,
        }
    }

    #[test]
    fn render_parse_round_trips_byte_exactly() {
        let entry = sample_entry("abc123", 64.0);
        let line = entry.render_line();
        let parsed = parse_entry(&line).unwrap();
        assert_eq!(parsed, entry);
        assert_eq!(parsed.render_line(), line, "render ∘ parse ≡ id");
        assert!(!line.contains('\n'), "one entry = one line");
    }

    #[test]
    fn unrecorded_throughput_renders_null_and_parses_nan() {
        let mut entry = sample_entry("abc123", 64.0);
        entry.cells_per_sec = f64::NAN;
        let line = entry.render_line();
        assert!(line.contains("\"cells_per_sec\": null"));
        let parsed = parse_entry(&line).unwrap();
        assert!(parsed.cells_per_sec.is_nan());
        assert_eq!(parsed.render_line(), line);
    }

    #[test]
    fn ledger_parses_in_order_and_skips_blank_lines() {
        let text = format!(
            "{}\n\n{}\n",
            sample_entry("aaa", 64.0).render_line(),
            sample_entry("bbb", 65.0).render_line()
        );
        let history = parse_history(&text).unwrap();
        assert_eq!(history.entries.len(), 2);
        assert_eq!(history.entries[0].commit, "aaa");
        assert_eq!(history.entries[1].commit, "bbb");
    }

    #[test]
    fn malformed_lines_carry_line_numbers() {
        let text = format!("{}\nnot json\n", sample_entry("aaa", 64.0).render_line());
        let e = parse_history(&text).unwrap_err().to_string();
        assert!(e.contains("line 2"), "{e}");
        let e = parse_history("{\"history_schema_version\": 99}")
            .unwrap_err()
            .to_string();
        assert!(e.contains("unsupported history_schema_version"), "{e}");
    }

    #[test]
    fn duplicate_commits_are_rejected_on_parse_and_append() {
        let line = sample_entry("aaa", 64.0).render_line();
        let e = parse_history(&format!("{line}\n{line}\n"))
            .unwrap_err()
            .to_string();
        assert!(e.contains("duplicate commit"), "{e}");

        let path = std::env::temp_dir().join(format!("doall_hist_{}.jsonl", std::process::id()));
        let path_s = path.to_string_lossy().into_owned();
        let _ = std::fs::remove_file(&path);
        let first = append_entry(&path_s, &sample_entry("aaa", 64.0)).unwrap();
        assert_eq!(first.entries.len(), 1);
        let second = append_entry(&path_s, &sample_entry("bbb", 65.0)).unwrap();
        assert_eq!(second.entries.len(), 2);
        let e = append_entry(&path_s, &sample_entry("aaa", 66.0)).unwrap_err();
        assert!(e.to_string().contains("already in the ledger"), "{e}");
        // The failed append wrote nothing.
        let on_disk = load_history(&path_s).unwrap();
        assert_eq!(on_disk, second);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn entries_adapt_from_and_back_to_baseline_sets() {
        let entry = sample_entry("aaa", 64.0);
        let set = entry.to_baseline_set();
        assert_eq!(set.mode, "smoke");
        assert_eq!(set.cells, entry.cells);
        let back = HistoryEntry::from_result_set("bbb", "ts", f64::NAN, &set);
        assert_eq!(back.cells, entry.cells);
        assert_eq!(back.commit, "bbb");
        // And the round trip through compare is clean.
        let cmp = crate::compare::compare(&set, &back.to_baseline_set(), 0.0);
        assert!(cmp.is_clean());
    }

    #[test]
    fn ledger_records_canonicalize_adversaries_like_result_sets() {
        // A hand-edited ledger line with a non-canonical spelling still
        // keys canonically — same single implementation as result sets.
        let line = sample_entry("aaa", 64.0)
            .render_line()
            .replace("crash:7", "crash:07");
        let parsed = parse_entry(&line).unwrap();
        assert!(parsed.cells.keys().all(|k| k.adversary == "crash:7"));
    }
}
