//! The sweep record schema, owned in one place: the `ResultSet` /
//! `Record` model, its deterministic JSON/CSV renderers, the minimal
//! hand-rolled JSON reader, and the parsed [`BaselineSet`] view keyed by
//! [`CellKey`].
//!
//! Before this module existed, three call sites each hand-rolled a
//! reader or renderer of the same schema — `compare` (a private JSON
//! parser), `output` (the JSON/CSV writers), and `suite` (its report
//! model) — which is exactly how schema drift is born. Everything that
//! defines what a record *is* now lives here; `output` keeps only the
//! flag plumbing, `compare` only the diff logic.
//!
//! Invariants this module owns:
//!
//! * **parse ∘ render ≡ id** — [`parse_result_set`] applied to
//!   [`ResultSet::to_json`] loses nothing the comparator needs, and the
//!   harness's own JSON always re-parses ([`BaselineSet::of`]).
//! * **Determinism** — records keep cell order, metric maps are
//!   `BTreeMap`s (sorted keys), floats print via Rust's
//!   shortest-round-trip `Display`, and nothing time- or
//!   machine-dependent is ever serialized. Byte-identical output across
//!   thread counts is a tested invariant.
//! * **Canonical keys** — adversary spellings canonicalize through the
//!   grid grammar in exactly one place ([`canonical_adversary`]), and
//!   records without a `backend` field key as `"sim"`, so pre-backend
//!   baselines keep matching.

use crate::grid::Cell;
use crate::Table;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fmt::Write as _;

/// Version of the JSON schema; bump on breaking layout changes so CI's
/// baseline diff fails loudly instead of drifting.
pub const SCHEMA_VERSION: u32 = 1;

/// An error from reading or interpreting result-set data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultSetError(String);

impl fmt::Display for ResultSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ResultSetError {}

pub(crate) fn err(msg: impl Into<String>) -> ResultSetError {
    ResultSetError(msg.into())
}

// === Rendering ============================================================

/// One row of results: a cell plus its (measured and derived) metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Experiment id (`"e01"` … `"e15"`, or `"sweep"` for ad-hoc grids).
    pub experiment: String,
    /// The scenario the metrics describe.
    pub cell: Cell,
    /// Named metrics, sorted by name (mean/median/max work & messages,
    /// completion counts, bounds, ratios, execution profiles, …).
    pub metrics: BTreeMap<String, f64>,
}

impl Record {
    /// The record's cell identity — exactly the key parsing its rendered
    /// JSON would produce (legacy untagged cells key as `sim`; the
    /// in-memory adversary is structured, hence already canonical).
    #[must_use]
    pub fn key(&self) -> CellKey {
        CellKey {
            experiment: self.experiment.clone(),
            algo: self.cell.algo.clone(),
            adversary: self.cell.adversary.to_string(),
            backend: self.cell.effective_backend().to_string(),
            p: self.cell.p as u64,
            t: self.cell.t as u64,
            d: self.cell.d,
            seeds: self.cell.seeds,
        }
    }
}

/// A full sweep's records plus the mode that produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// `"smoke"`, `"full"`, or `"custom"` (CLI grids).
    pub mode: String,
    /// All records, in cell order.
    pub records: Vec<Record>,
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no NaN/Infinity; null keeps the key visible.
        "null".to_string()
    }
}

/// Renders one metric map as the `"name": value, …` body of a JSON
/// object (sorted by name via the `BTreeMap`).
fn render_metrics(out: &mut String, metrics: &BTreeMap<String, f64>) {
    for (j, (name, value)) in metrics.iter().enumerate() {
        let _ = write!(
            out,
            "{}\"{}\": {}",
            if j == 0 { "" } else { ", " },
            json_escape(name),
            json_number(*value)
        );
    }
}

impl ResultSet {
    /// Renders the set as deterministic, pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"generator\": \"doall-bench sweep harness\",");
        let _ = writeln!(out, "  \"mode\": \"{}\",", json_escape(&self.mode));
        out.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            // Backend-tagged cells (grids with an explicit `backends=`
            // axis) carry a `backend` field; legacy sim-only records
            // render exactly as before the axis existed, so committed
            // baselines stay byte-identical.
            let backend = match r.cell.backend {
                Some(b) => format!("\"backend\": \"{b}\", "),
                None => String::new(),
            };
            let _ = write!(
                out,
                "    {{\"experiment\": \"{}\", \"algo\": \"{}\", \"adversary\": \"{}\", \
                 {}\"p\": {}, \"t\": {}, \"d\": {}, \"seeds\": {}, \"metrics\": {{",
                json_escape(&r.experiment),
                json_escape(&r.cell.algo),
                json_escape(&r.cell.adversary.to_string()),
                backend,
                r.cell.p,
                r.cell.t,
                r.cell.d,
                r.cell.seeds,
            );
            render_metrics(&mut out, &r.metrics);
            out.push_str("}}");
            out.push_str(if i + 1 == self.records.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the set as long-format CSV: one row per (cell, metric).
    /// Backend-tagged result sets gain a `backend` column after
    /// `adversary`; legacy sim-only sets keep the pre-axis header.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let tagged = self.records.iter().any(|r| r.cell.backend.is_some());
        let mut out = String::from(if tagged {
            "experiment,algo,adversary,backend,p,t,d,seeds,metric,value\n"
        } else {
            "experiment,algo,adversary,p,t,d,seeds,metric,value\n"
        });
        for r in &self.records {
            let backend = if tagged {
                format!("{},", r.cell.effective_backend())
            } else {
                String::new()
            };
            for (name, value) in &r.metrics {
                let _ = writeln!(
                    out,
                    "{},{},{},{}{},{},{},{},{},{}",
                    r.experiment,
                    r.cell.algo,
                    r.cell.adversary,
                    backend,
                    r.cell.p,
                    r.cell.t,
                    r.cell.d,
                    r.cell.seeds,
                    name,
                    json_number(*value)
                );
            }
        }
        out
    }

    /// Prints one Markdown table per experiment (records grouped in
    /// order, metric columns the sorted union within each group).
    pub fn print_tables(&self) {
        let mut i = 0;
        while i < self.records.len() {
            let exp = &self.records[i].experiment;
            let mut j = i;
            while j < self.records.len() && &self.records[j].experiment == exp {
                j += 1;
            }
            let group = &self.records[i..j];
            let tagged = group.iter().any(|r| r.cell.backend.is_some());
            let metric_names: BTreeSet<&String> =
                group.iter().flat_map(|r| r.metrics.keys()).collect();
            let mut headers = vec![
                "algo".to_string(),
                "adversary".to_string(),
                "p".to_string(),
                "t".to_string(),
                "d".to_string(),
            ];
            if tagged {
                headers.insert(2, "backend".to_string());
            }
            headers.extend(metric_names.iter().map(|s| (*s).clone()));
            let mut table = Table::new(headers);
            for r in group {
                let mut row = vec![
                    r.cell.algo.clone(),
                    r.cell.adversary.to_string(),
                    r.cell.p.to_string(),
                    r.cell.t.to_string(),
                    r.cell.d.to_string(),
                ];
                if tagged {
                    row.insert(2, r.cell.effective_backend().to_string());
                }
                for name in &metric_names {
                    row.push(match r.metrics.get(*name) {
                        Some(v) => crate::fmt(*v),
                        None => "—".to_string(),
                    });
                }
                table.row(row);
            }
            table.print();
            println!();
            i = j;
        }
    }
}

// === Minimal JSON reader ==================================================
//
// Just enough JSON for the sweep schema (and strict about it): objects,
// arrays, strings with the standard escapes (including `\uXXXX` surrogate
// pairs), numbers via `f64::from_str` (round-trips everything our writer
// emits), `true`/`false`/`null`. No serde, no vendored crate.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (our writer uses it for non-finite metric values).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in document order (duplicate keys kept as-is).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup (first match) when `self` is an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn fail(&self, msg: &str) -> ResultSetError {
        err(format!("JSON error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), ResultSetError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, ResultSetError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.fail(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ResultSetError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.fail(&format!("unexpected byte `{}`", other as char))),
            None => Err(self.fail("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ResultSetError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.fail("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ResultSetError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.fail("expected `,` or `]` in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ResultSetError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.fail("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.fail("non-ASCII \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| self.fail("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, ResultSetError> {
        self.eat(b'"')?;
        let mut out = String::new();
        let mut run_start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    out.push_str(&self.text[run_start..self.pos]);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(&self.text[run_start..self.pos]);
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.fail("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..=0xDBFF).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&lo) {
                                        return Err(self.fail("bad low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.fail("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.fail("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(self.fail(&format!("unknown escape `\\{}`", other as char)));
                        }
                    }
                    run_start = self.pos;
                }
                Some(b) if b < 0x20 => return Err(self.fail("raw control byte in string")),
                Some(_) => {
                    // Advance over one UTF-8 scalar (input is a valid &str,
                    // so continuation bytes follow their leader).
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ResultSetError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let s = &self.text[start..self.pos];
        s.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| err(format!("JSON error at byte {start}: bad number `{s}`")))
    }
}

/// Parses a complete JSON document (one value plus optional trailing
/// whitespace).
///
/// # Errors
///
/// Returns a [`ResultSetError`] naming the first byte offset that fails
/// to parse.
pub fn parse_json(text: &str) -> Result<Json, ResultSetError> {
    let mut p = Parser::new(text);
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing garbage after JSON value"));
    }
    Ok(value)
}

// === The parsed view ======================================================

/// The identity of a cell for baseline matching: everything that names
/// the scenario, none of what measures it.
///
/// The `adversary` field holds the *canonical* spelling: result-set
/// parsing re-renders any key the grid grammar understands through
/// [`canonical_adversary`], so a pre-normalization baseline containing
/// `crash:07` matches a fresh run's `crash:7` instead of reporting a
/// spurious removed/added pair. Keys the grammar does not know (future
/// schema extensions) are kept verbatim.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CellKey {
    /// Experiment id (`"e01"` … `"e15"`, `"sweep"`, …).
    pub experiment: String,
    /// Algorithm key.
    pub algo: String,
    /// Adversary key.
    pub adversary: String,
    /// Backend key (`"sim"` / `"threads"`); `"sim"` when the record
    /// carries no `backend` field, so pre-backend baselines keep their
    /// identities.
    pub backend: String,
    /// Processors.
    pub p: u64,
    /// Tasks.
    pub t: u64,
    /// Delay bound.
    pub d: u64,
    /// Replicates per cell.
    pub seeds: u64,
}

impl fmt::Display for CellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} vs {} {}x{} d={} seeds={}",
            self.experiment, self.algo, self.adversary, self.p, self.t, self.d, self.seeds
        )?;
        // The default backend stays invisible, so legacy (sim-only)
        // renderings are unchanged.
        if self.backend != "sim" {
            write!(f, " backend={}", self.backend)?;
        }
        Ok(())
    }
}

/// The one adversary-key canonicalization point: spellings the grid
/// grammar understands re-render through
/// [`crate::grid::AdversarySpec`] (`crash:07` ≡ `crash:7`); unknown
/// keys pass through verbatim. Every schema reader — baseline parsing,
/// the history ledger, trend extraction — normalizes here, never
/// locally.
#[must_use]
pub fn canonical_adversary(raw: &str) -> String {
    crate::grid::AdversarySpec::parse(raw).map_or_else(|_| raw.to_string(), |spec| spec.to_string())
}

/// A result set reduced to what comparison needs: document metadata plus
/// cells keyed for matching. Serialized `null` metric values (non-finite
/// numbers) come back as `NaN`.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineSet {
    /// The file's `schema_version`.
    pub schema_version: u64,
    /// The file's `mode` (`"smoke"`, `"full"`, `"custom"`).
    pub mode: String,
    /// Metric maps keyed by cell identity.
    pub cells: BTreeMap<CellKey, BTreeMap<String, f64>>,
}

impl BaselineSet {
    /// Reduces an in-memory [`ResultSet`] through its own rendered JSON,
    /// so comparison always sees exactly what serialization preserves.
    ///
    /// # Panics
    ///
    /// Panics if the harness's own JSON fails to re-parse (a writer bug)
    /// or if the set holds duplicate cell keys.
    #[must_use]
    pub fn of(results: &ResultSet) -> Self {
        parse_result_set(&results.to_json()).expect("the harness's own JSON round-trips")
    }
}

pub(crate) fn field<'a>(obj: &'a Json, key: &str, what: &str) -> Result<&'a Json, ResultSetError> {
    obj.get(key)
        .ok_or_else(|| err(format!("{what}: missing `{key}`")))
}

pub(crate) fn as_u64(value: &Json, what: &str) -> Result<u64, ResultSetError> {
    match value {
        Json::Number(v) if v.fract() == 0.0 && *v >= 0.0 && *v <= 2f64.powi(53) =>
        {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Ok(*v as u64)
        }
        _ => Err(err(format!("{what}: expected a non-negative integer"))),
    }
}

pub(crate) fn as_str<'a>(value: &'a Json, what: &str) -> Result<&'a str, ResultSetError> {
    match value {
        Json::String(s) => Ok(s),
        _ => Err(err(format!("{what}: expected a string"))),
    }
}

/// Parses one record object into its key, metric map, and the raw
/// (pre-canonicalization) adversary spelling — shared by result-set
/// documents and history-ledger entries, so both normalize identically.
pub(crate) fn record_from_json(
    record: &Json,
    what: &str,
) -> Result<(CellKey, BTreeMap<String, f64>, String), ResultSetError> {
    if !matches!(record, Json::Object(_)) {
        return Err(err(format!("{what}: expected an object")));
    }
    let raw_adversary = as_str(field(record, "adversary", what)?, what)?.to_string();
    let key = CellKey {
        experiment: as_str(field(record, "experiment", what)?, what)?.to_string(),
        algo: as_str(field(record, "algo", what)?, what)?.to_string(),
        adversary: canonical_adversary(&raw_adversary),
        // Optional: absent on every pre-backend record (and on
        // legacy, axis-omitted grids today), which keys as `sim`.
        backend: match record.get("backend") {
            Some(value) => as_str(value, what)?.to_string(),
            None => "sim".to_string(),
        },
        p: as_u64(field(record, "p", what)?, what)?,
        t: as_u64(field(record, "t", what)?, what)?,
        d: as_u64(field(record, "d", what)?, what)?,
        seeds: as_u64(field(record, "seeds", what)?, what)?,
    };
    let metrics_obj = match field(record, "metrics", what)? {
        Json::Object(members) => members,
        _ => return Err(err(format!("{what}: metrics is not an object"))),
    };
    let mut metrics = BTreeMap::new();
    for (name, value) in metrics_obj {
        let v = match value {
            Json::Number(v) => *v,
            Json::Null => f64::NAN,
            _ => {
                return Err(err(format!("{what}: metric `{name}` is not a number")));
            }
        };
        metrics.insert(name.clone(), v);
    }
    Ok((key, metrics, raw_adversary))
}

/// Inserts a parsed record into a cell map, rejecting duplicates with a
/// canonicalization hint when two spellings collapsed onto one key.
pub(crate) fn insert_cell(
    cells: &mut BTreeMap<CellKey, BTreeMap<String, f64>>,
    key: CellKey,
    metrics: BTreeMap<String, f64>,
    raw_adversary: &str,
) -> Result<(), ResultSetError> {
    let adversary = key.adversary.clone();
    let rendered = key.to_string();
    if cells.insert(key, metrics).is_some() {
        // Two records can collapse onto one key through adversary
        // canonicalization (e.g. a pre-normalization file holding both
        // `crash:07` and `crash:7` cells); name that in the error so
        // the "duplicate" is explicable when no literal dup exists.
        let hint = if raw_adversary == adversary {
            String::new()
        } else {
            format!(" (adversary `{raw_adversary}` canonicalizes to `{adversary}`)")
        };
        return Err(err(format!("duplicate cell `{rendered}`{hint}")));
    }
    Ok(())
}

/// Parses a sweep result-set document (the schema written by
/// [`ResultSet::to_json`]) into a [`BaselineSet`]. Unknown fields are
/// ignored (forward compatibility); missing or mistyped required fields
/// and duplicate cell keys are errors.
///
/// # Errors
///
/// Returns a [`ResultSetError`] describing the first structural problem.
pub fn parse_result_set(text: &str) -> Result<BaselineSet, ResultSetError> {
    let root = parse_json(text)?;
    if !matches!(root, Json::Object(_)) {
        return Err(err("result set: top level is not an object"));
    }
    let schema_version = as_u64(
        field(&root, "schema_version", "result set")?,
        "schema_version",
    )?;
    let mode = as_str(field(&root, "mode", "result set")?, "mode")?.to_string();
    let records = match field(&root, "records", "result set")? {
        Json::Array(items) => items,
        _ => return Err(err("records: expected an array")),
    };
    let mut cells: BTreeMap<CellKey, BTreeMap<String, f64>> = BTreeMap::new();
    for (i, record) in records.iter().enumerate() {
        let what = format!("records[{i}]");
        let (key, metrics, raw_adversary) = record_from_json(record, &what)?;
        insert_cell(&mut cells, key, metrics, &raw_adversary)?;
    }
    Ok(BaselineSet {
        schema_version,
        mode,
        cells,
    })
}

/// Reads and parses a result-set file.
///
/// # Errors
///
/// Returns a [`ResultSetError`] for I/O problems or malformed content.
pub fn load_result_set(path: &str) -> Result<BaselineSet, ResultSetError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
    parse_result_set(&text).map_err(|e| err(format!("{path}: {e}")))
}

/// Renders one keyed cell as a compact record object (the history
/// ledger's per-record form). Unlike [`ResultSet::to_json`], the
/// `backend` field is always present — the key is already canonical, so
/// there is no legacy spelling to preserve.
pub(crate) fn render_key_record(key: &CellKey, metrics: &BTreeMap<String, f64>) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"experiment\": \"{}\", \"algo\": \"{}\", \"adversary\": \"{}\", \
         \"backend\": \"{}\", \"p\": {}, \"t\": {}, \"d\": {}, \"seeds\": {}, \"metrics\": {{",
        json_escape(&key.experiment),
        json_escape(&key.algo),
        json_escape(&key.adversary),
        json_escape(&key.backend),
        key.p,
        key.t,
        key.d,
        key.seeds,
    );
    render_metrics(&mut out, metrics);
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(exp: &str, algo: &str, d: u64, work: f64) -> Record {
        let mut metrics = BTreeMap::new();
        metrics.insert("mean_work".to_string(), work);
        metrics.insert("ratio".to_string(), work / 64.0);
        Record {
            experiment: exp.to_string(),
            cell: Cell {
                algo: algo.to_string(),
                adversary: crate::grid::AdversarySpec::Stage,
                p: 4,
                t: 16,
                d,
                seeds: 2,
                cell_seed: 7,
                backend: None,
            },
            metrics,
        }
    }

    #[test]
    fn json_is_deterministic_and_well_formed() {
        let set = ResultSet {
            mode: "smoke".to_string(),
            records: vec![
                record("e01", "soloall", 1, 64.0),
                record("e01", "da:3", 2, 40.5),
            ],
        };
        let a = set.to_json();
        let b = set.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schema_version\": 1"));
        assert!(a.contains("\"mean_work\": 40.5"));
        assert!(a.contains("\"algo\": \"da:3\""));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn json_handles_non_finite_and_escapes() {
        let mut r = record("e01", "a\"b", 1, 1.0);
        r.metrics.insert("bad".to_string(), f64::NAN);
        let set = ResultSet {
            mode: "full".to_string(),
            records: vec![r],
        };
        let json = set.to_json();
        assert!(json.contains("\\\"")); // escaped quote
        assert!(json.contains("\"bad\": null"));
    }

    #[test]
    fn backend_tagged_records_render_the_backend_everywhere() {
        use crate::grid::Backend;
        let mut sim = record("e17", "da:3", 2, 40.0);
        sim.cell.backend = Some(Backend::Sim);
        let mut threads = record("e17", "da:3", 2, 44.0);
        threads.cell.backend = Some(Backend::Threads);
        let set = ResultSet {
            mode: "custom".to_string(),
            records: vec![sim, threads],
        };
        let json = set.to_json();
        assert!(json.contains("\"backend\": \"sim\""));
        assert!(json.contains("\"backend\": \"threads\""));
        let csv = set.to_csv();
        assert!(csv.starts_with("experiment,algo,adversary,backend,p,t,d,seeds,metric,value\n"));
        assert!(csv.contains("e17,da:3,stage,threads,4,16,2,2,mean_work,44"));
        set.print_tables(); // smoke: backend column must not break width math
    }

    #[test]
    fn untagged_records_render_the_legacy_schema() {
        // No `backends=` axis ⇒ not a byte of output changes: the exact
        // guarantee committed baselines rely on.
        let set = ResultSet {
            mode: "smoke".to_string(),
            records: vec![record("e01", "soloall", 1, 64.0)],
        };
        assert!(!set.to_json().contains("backend"));
        assert!(set
            .to_csv()
            .starts_with("experiment,algo,adversary,p,t,d,seeds,metric,value\n"));
    }

    #[test]
    fn csv_has_one_row_per_metric() {
        let set = ResultSet {
            mode: "smoke".to_string(),
            records: vec![record("e01", "soloall", 1, 64.0)],
        };
        let csv = set.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 metrics");
        assert_eq!(
            lines[0],
            "experiment,algo,adversary,p,t,d,seeds,metric,value"
        );
        assert!(lines[1].starts_with("e01,soloall,stage,4,16,1,2,mean_work,"));
    }

    #[test]
    fn json_parser_handles_the_value_zoo() {
        let doc =
            r#"{"a": [1, -2.5, 1e3, null, true, false], "b": {"nested": ""}, "c": "q\"\\\nA🦀"}"#;
        let v = parse_json(doc).unwrap();
        let a = match v.get("a").unwrap() {
            Json::Array(items) => items,
            other => panic!("{other:?}"),
        };
        assert_eq!(a[0], Json::Number(1.0));
        assert_eq!(a[1], Json::Number(-2.5));
        assert_eq!(a[2], Json::Number(1000.0));
        assert_eq!(a[3], Json::Null);
        assert_eq!(a[4], Json::Bool(true));
        assert_eq!(a[5], Json::Bool(false));
        assert_eq!(
            v.get("b").unwrap().get("nested"),
            Some(&Json::String(String::new()))
        );
        assert_eq!(
            v.get("c").unwrap(),
            &Json::String("q\"\\\nA\u{1F980}".to_string())
        );
    }

    #[test]
    fn json_parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "\"bad \\q escape\"",
            "nul",
            "+5",
            "1.2.3",
            "{\"a\": 1 \"b\": 2}",
            "\"\\ud800 lone\"",
        ] {
            assert!(parse_json(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn parse_render_round_trips_the_harness_schema() {
        // parse ∘ render ≡ id: the in-memory set, rendered and re-parsed,
        // reduces to the same BaselineSet as the direct reduction.
        let set = ResultSet {
            mode: "smoke".to_string(),
            records: vec![
                record("e01", "soloall", 1, 64.0),
                record("e01", "da:3", 2, 40.5),
            ],
        };
        let parsed = parse_result_set(&set.to_json()).unwrap();
        assert_eq!(parsed, BaselineSet::of(&set));
        assert_eq!(parsed.schema_version, u64::from(SCHEMA_VERSION));
        assert_eq!(parsed.mode, "smoke");
        assert_eq!(parsed.cells.len(), 2);
    }

    #[test]
    fn adversary_canonicalization_has_one_implementation() {
        // The regression the refactor pins down: a pre-normalization
        // baseline (`crash:07`, `crash:25@even`) keys identically to a
        // fresh run's canonical spellings, through the single
        // canonical_adversary() point.
        assert_eq!(canonical_adversary("crash:07"), "crash:7");
        assert_eq!(canonical_adversary("crash:25@even"), "crash:25");
        assert_eq!(canonical_adversary("stage"), "stage");
        // Keys outside the grammar pass through verbatim (no false merge).
        assert_eq!(canonical_adversary("quantum:3"), "quantum:3");
    }

    #[test]
    fn render_key_record_parses_back_to_the_same_cell() {
        let key = CellKey {
            experiment: "e12".to_string(),
            algo: "paran1".to_string(),
            adversary: "crash:7".to_string(),
            backend: "threads".to_string(),
            p: 8,
            t: 32,
            d: 4,
            seeds: 2,
        };
        let mut metrics = BTreeMap::new();
        metrics.insert("mean_work".to_string(), 40.5);
        metrics.insert("bad".to_string(), f64::NAN);
        let rendered = render_key_record(&key, &metrics);
        let json = parse_json(&rendered).unwrap();
        let (back, back_metrics, _) = record_from_json(&json, "record").unwrap();
        assert_eq!(back, key);
        assert_eq!(back_metrics["mean_work"], 40.5);
        assert!(back_metrics["bad"].is_nan(), "null round-trips to NaN");
    }
}
