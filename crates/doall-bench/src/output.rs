//! The shared command-line flags every experiment binary understands,
//! plus format selection and delivery (`emit`) for the machine-readable
//! sweep results.
//!
//! The result-set model and its deterministic JSON/CSV renderers live in
//! [`crate::resultset`] — the single owner of the record schema. This
//! module only decides *which* rendering to produce and *where* it goes
//! (stdout or `--out`).

// The schema types used to live here; the re-export keeps
// `doall_bench::output::{Record, ResultSet, SCHEMA_VERSION}` paths
// compiling.
pub use crate::resultset::{Record, ResultSet, SCHEMA_VERSION};

/// Output format selected by the shared flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// Human-readable Markdown tables (the default).
    #[default]
    Table,
    /// Deterministic JSON (see [`ResultSet::to_json`]).
    Json,
    /// Long-format CSV.
    Csv,
}

/// The flags every experiment binary shares.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Flags {
    /// Run the tiny smoke grid instead of the full one.
    pub smoke: bool,
    /// Output format.
    pub format: Format,
    /// Write output here instead of stdout.
    pub out: Option<String>,
    /// Worker threads (default: available parallelism).
    pub threads: Option<usize>,
    /// Replicates per shard (default: auto — see
    /// [`crate::sweep::SweepConfig::shard_size`]). Wall-clock only; never
    /// a number.
    pub shard_size: Option<u64>,
    /// Tick cutoff override.
    pub max_ticks: Option<u64>,
    /// Restrict `all_experiments` to these ids.
    pub only: Option<Vec<String>>,
    /// Compare results against this baseline file after the run; drift
    /// makes the binary exit 1.
    pub compare: Option<String>,
    /// Drift tolerance for `--compare` (see
    /// [`crate::compare::drifted`]); default 0 (exact).
    pub tolerance: f64,
}

/// Usage text for the shared experiment flags.
pub const FLAGS_USAGE: &str = "\
Shared experiment flags:
  --smoke          run the tiny smoke grid instead of the full grid
  --json           emit machine-readable JSON (deterministic; CI baseline format)
  --csv            emit long-format CSV (one row per cell × metric)
  --out PATH       write output to PATH instead of stdout
  --threads N      worker threads (default: available parallelism)
  --shard-size N   replicates per scheduled shard (default: auto — one big
                   cell splits across workers; results never change)
  --max-ticks N    per-run tick cutoff override
  --only e05,e11   (all_experiments) run only the listed experiment ids
  --compare PATH   diff results against this baseline JSON after the run
                   (diff table on stderr; any drift makes the binary exit 1)
  --tolerance X    relative drift tolerance for --compare (default 0 = exact)
  --help           print this help

Scenario assertion failures (the `assert` lines of the *.scn files) are
reported on stderr and also make the binary exit 1.
";

/// Parses the shared flags from an argument vector (without the program
/// name).
///
/// # Errors
///
/// Returns a human-readable message for unknown flags, missing values,
/// or conflicting formats (`--json` with `--csv`). The special value
/// `"help"` is returned when `--help` was requested.
pub fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--smoke" => flags.smoke = true,
            "--json" => {
                if flags.format == Format::Csv {
                    return Err("--json conflicts with --csv".to_string());
                }
                flags.format = Format::Json;
            }
            "--csv" => {
                if flags.format == Format::Json {
                    return Err("--json conflicts with --csv".to_string());
                }
                flags.format = Format::Csv;
            }
            "--out" => flags.out = Some(value()?),
            "--threads" => {
                let n: usize = value()?
                    .parse()
                    .map_err(|_| "--threads needs a positive integer".to_string())?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                flags.threads = Some(n);
            }
            "--shard-size" => {
                let n: u64 = value()?
                    .parse()
                    .map_err(|_| "--shard-size needs a positive integer".to_string())?;
                if n == 0 {
                    return Err("--shard-size must be at least 1".to_string());
                }
                flags.shard_size = Some(n);
            }
            "--max-ticks" => {
                let n: u64 = value()?
                    .parse()
                    .map_err(|_| "--max-ticks needs a positive integer".to_string())?;
                if n == 0 {
                    return Err("--max-ticks must be at least 1".to_string());
                }
                flags.max_ticks = Some(n);
            }
            "--only" => {
                flags.only = Some(value()?.split(',').map(str::to_string).collect());
            }
            "--compare" => flags.compare = Some(value()?),
            "--tolerance" => {
                let x: f64 = value()?
                    .parse()
                    .map_err(|_| "--tolerance needs a number".to_string())?;
                if !x.is_finite() || x < 0.0 {
                    return Err("--tolerance must be a finite non-negative number".to_string());
                }
                flags.tolerance = x;
            }
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unknown flag {other}; try --help")),
        }
    }
    // `--out` without an explicit format means JSON: a file of Markdown
    // tables is never what CI wants.
    if flags.out.is_some() && flags.format == Format::Table {
        flags.format = Format::Json;
    }
    Ok(flags)
}

/// Renders the chosen format and delivers it to stdout or `--out`.
///
/// # Errors
///
/// Returns a message if the output file cannot be written.
pub fn emit(results: &ResultSet, flags: &Flags) -> Result<(), String> {
    let rendered = match flags.format {
        Format::Table => {
            results.print_tables();
            return Ok(());
        }
        Format::Json => results.to_json(),
        Format::Csv => results.to_csv(),
    };
    match &flags.out {
        Some(path) => {
            std::fs::write(path, rendered).map_err(|e| format!("cannot write {path}: {e}"))
        }
        None => {
            print!("{rendered}");
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_parse_and_default() {
        let args = |s: &str| -> Vec<String> { s.split_whitespace().map(String::from).collect() };
        let f = parse_flags(&args(
            "--smoke --json --threads 4 --shard-size 2 --out x.json",
        ))
        .unwrap();
        assert!(f.smoke);
        assert_eq!(f.format, Format::Json);
        assert_eq!(f.threads, Some(4));
        assert_eq!(f.shard_size, Some(2));
        assert_eq!(f.out.as_deref(), Some("x.json"));
        assert_eq!(parse_flags(&[]).unwrap(), Flags::default());
        // --out implies JSON when no format given.
        assert_eq!(
            parse_flags(&args("--out y.json")).unwrap().format,
            Format::Json
        );
        // --only splits.
        assert_eq!(
            parse_flags(&args("--only e01,e05")).unwrap().only,
            Some(vec!["e01".to_string(), "e05".to_string()])
        );
        // --compare / --tolerance.
        let f = parse_flags(&args("--compare base.json --tolerance 0.5")).unwrap();
        assert_eq!(f.compare.as_deref(), Some("base.json"));
        assert_eq!(f.tolerance, 0.5);
        assert_eq!(parse_flags(&[]).unwrap().tolerance, 0.0);
    }

    #[test]
    fn flags_reject_conflicts_and_garbage() {
        let args = |s: &str| -> Vec<String> { s.split_whitespace().map(String::from).collect() };
        assert!(parse_flags(&args("--json --csv")).is_err());
        assert!(parse_flags(&args("--csv --json")).is_err());
        assert!(parse_flags(&args("--threads 0")).is_err());
        assert!(parse_flags(&args("--threads many")).is_err());
        assert!(parse_flags(&args("--shard-size 0")).is_err());
        assert!(parse_flags(&args("--shard-size some")).is_err());
        assert!(parse_flags(&args("--shard-size")).is_err());
        assert!(parse_flags(&args("--max-ticks 0")).is_err());
        assert!(parse_flags(&args("--tolerance -0.1")).is_err());
        assert!(parse_flags(&args("--tolerance nan")).is_err());
        assert!(parse_flags(&args("--tolerance inf")).is_err());
        assert!(parse_flags(&args("--compare")).is_err());
        assert!(parse_flags(&args("--out")).is_err());
        assert!(parse_flags(&args("--frobnicate")).is_err());
        assert_eq!(parse_flags(&args("--help")).unwrap_err(), "help");
    }

    #[test]
    fn emit_writes_the_selected_format_to_out() {
        use std::collections::BTreeMap;
        let mut metrics = BTreeMap::new();
        metrics.insert("mean_work".to_string(), 64.0);
        let set = ResultSet {
            mode: "smoke".to_string(),
            records: vec![Record {
                experiment: "e01".to_string(),
                cell: crate::grid::Cell {
                    algo: "soloall".to_string(),
                    adversary: crate::grid::AdversarySpec::Stage,
                    p: 4,
                    t: 16,
                    d: 1,
                    seeds: 2,
                    cell_seed: 7,
                    backend: None,
                },
                metrics,
            }],
        };
        let path = std::env::temp_dir().join(format!("doall_emit_{}.json", std::process::id()));
        let flags = Flags {
            out: Some(path.to_string_lossy().into_owned()),
            format: Format::Json,
            ..Flags::default()
        };
        emit(&set, &flags).unwrap();
        let written = std::fs::read_to_string(&path).unwrap();
        assert_eq!(written, set.to_json());
        std::fs::remove_file(&path).unwrap();
    }
}
