//! Machine-readable sweep results (JSON / CSV) plus the shared
//! command-line flags every experiment binary understands.
//!
//! The JSON writer is deliberately deterministic: records keep cell
//! order, metric maps are `BTreeMap`s (sorted keys), floats print via
//! Rust's shortest-round-trip `Display`, and nothing time- or
//! machine-dependent (timestamps, thread counts, durations) is ever
//! serialized. Byte-identical output across thread counts is a tested
//! invariant, and the committed `BENCH_sweep.json` baseline stays stable
//! across machines.

use crate::grid::Cell;
use crate::Table;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Version of the JSON schema; bump on breaking layout changes so CI's
/// baseline diff fails loudly instead of drifting.
pub const SCHEMA_VERSION: u32 = 1;

/// One row of results: a cell plus its (measured and derived) metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Experiment id (`"e01"` … `"e15"`, or `"sweep"` for ad-hoc grids).
    pub experiment: String,
    /// The scenario the metrics describe.
    pub cell: Cell,
    /// Named metrics, sorted by name (mean/median/max work & messages,
    /// completion counts, bounds, ratios, execution profiles, …).
    pub metrics: BTreeMap<String, f64>,
}

/// A full sweep's records plus the mode that produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// `"smoke"`, `"full"`, or `"custom"` (CLI grids).
    pub mode: String,
    /// All records, in cell order.
    pub records: Vec<Record>,
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no NaN/Infinity; null keeps the key visible.
        "null".to_string()
    }
}

impl ResultSet {
    /// Renders the set as deterministic, pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"generator\": \"doall-bench sweep harness\",");
        let _ = writeln!(out, "  \"mode\": \"{}\",", json_escape(&self.mode));
        out.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            // Backend-tagged cells (grids with an explicit `backends=`
            // axis) carry a `backend` field; legacy sim-only records
            // render exactly as before the axis existed, so committed
            // baselines stay byte-identical.
            let backend = match r.cell.backend {
                Some(b) => format!("\"backend\": \"{b}\", "),
                None => String::new(),
            };
            let _ = write!(
                out,
                "    {{\"experiment\": \"{}\", \"algo\": \"{}\", \"adversary\": \"{}\", \
                 {}\"p\": {}, \"t\": {}, \"d\": {}, \"seeds\": {}, \"metrics\": {{",
                json_escape(&r.experiment),
                json_escape(&r.cell.algo),
                json_escape(&r.cell.adversary.to_string()),
                backend,
                r.cell.p,
                r.cell.t,
                r.cell.d,
                r.cell.seeds,
            );
            for (j, (name, value)) in r.metrics.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}\"{}\": {}",
                    if j == 0 { "" } else { ", " },
                    json_escape(name),
                    json_number(*value)
                );
            }
            out.push_str("}}");
            out.push_str(if i + 1 == self.records.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the set as long-format CSV: one row per (cell, metric).
    /// Backend-tagged result sets gain a `backend` column after
    /// `adversary`; legacy sim-only sets keep the pre-axis header.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let tagged = self.records.iter().any(|r| r.cell.backend.is_some());
        let mut out = String::from(if tagged {
            "experiment,algo,adversary,backend,p,t,d,seeds,metric,value\n"
        } else {
            "experiment,algo,adversary,p,t,d,seeds,metric,value\n"
        });
        for r in &self.records {
            let backend = if tagged {
                format!("{},", r.cell.effective_backend())
            } else {
                String::new()
            };
            for (name, value) in &r.metrics {
                let _ = writeln!(
                    out,
                    "{},{},{},{}{},{},{},{},{},{}",
                    r.experiment,
                    r.cell.algo,
                    r.cell.adversary,
                    backend,
                    r.cell.p,
                    r.cell.t,
                    r.cell.d,
                    r.cell.seeds,
                    name,
                    json_number(*value)
                );
            }
        }
        out
    }

    /// Prints one Markdown table per experiment (records grouped in
    /// order, metric columns the sorted union within each group).
    pub fn print_tables(&self) {
        let mut i = 0;
        while i < self.records.len() {
            let exp = &self.records[i].experiment;
            let mut j = i;
            while j < self.records.len() && &self.records[j].experiment == exp {
                j += 1;
            }
            let group = &self.records[i..j];
            let tagged = group.iter().any(|r| r.cell.backend.is_some());
            let metric_names: BTreeSet<&String> =
                group.iter().flat_map(|r| r.metrics.keys()).collect();
            let mut headers = vec![
                "algo".to_string(),
                "adversary".to_string(),
                "p".to_string(),
                "t".to_string(),
                "d".to_string(),
            ];
            if tagged {
                headers.insert(2, "backend".to_string());
            }
            headers.extend(metric_names.iter().map(|s| (*s).clone()));
            let mut table = Table::new(headers);
            for r in group {
                let mut row = vec![
                    r.cell.algo.clone(),
                    r.cell.adversary.to_string(),
                    r.cell.p.to_string(),
                    r.cell.t.to_string(),
                    r.cell.d.to_string(),
                ];
                if tagged {
                    row.insert(2, r.cell.effective_backend().to_string());
                }
                for name in &metric_names {
                    row.push(match r.metrics.get(*name) {
                        Some(v) => crate::fmt(*v),
                        None => "—".to_string(),
                    });
                }
                table.row(row);
            }
            table.print();
            println!();
            i = j;
        }
    }
}

/// Output format selected by the shared flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// Human-readable Markdown tables (the default).
    #[default]
    Table,
    /// Deterministic JSON (see [`ResultSet::to_json`]).
    Json,
    /// Long-format CSV.
    Csv,
}

/// The flags every experiment binary shares.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Flags {
    /// Run the tiny smoke grid instead of the full one.
    pub smoke: bool,
    /// Output format.
    pub format: Format,
    /// Write output here instead of stdout.
    pub out: Option<String>,
    /// Worker threads (default: available parallelism).
    pub threads: Option<usize>,
    /// Replicates per shard (default: auto — see
    /// [`crate::sweep::SweepConfig::shard_size`]). Wall-clock only; never
    /// a number.
    pub shard_size: Option<u64>,
    /// Tick cutoff override.
    pub max_ticks: Option<u64>,
    /// Restrict `all_experiments` to these ids.
    pub only: Option<Vec<String>>,
    /// Compare results against this baseline file after the run; drift
    /// makes the binary exit 1.
    pub compare: Option<String>,
    /// Drift tolerance for `--compare` (see
    /// [`crate::compare::drifted`]); default 0 (exact).
    pub tolerance: f64,
}

/// Usage text for the shared experiment flags.
pub const FLAGS_USAGE: &str = "\
Shared experiment flags:
  --smoke          run the tiny smoke grid instead of the full grid
  --json           emit machine-readable JSON (deterministic; CI baseline format)
  --csv            emit long-format CSV (one row per cell × metric)
  --out PATH       write output to PATH instead of stdout
  --threads N      worker threads (default: available parallelism)
  --shard-size N   replicates per scheduled shard (default: auto — one big
                   cell splits across workers; results never change)
  --max-ticks N    per-run tick cutoff override
  --only e05,e11   (all_experiments) run only the listed experiment ids
  --compare PATH   diff results against this baseline JSON after the run
                   (diff table on stderr; any drift makes the binary exit 1)
  --tolerance X    relative drift tolerance for --compare (default 0 = exact)
  --help           print this help

Scenario assertion failures (the `assert` lines of the *.scn files) are
reported on stderr and also make the binary exit 1.
";

/// Parses the shared flags from an argument vector (without the program
/// name).
///
/// # Errors
///
/// Returns a human-readable message for unknown flags, missing values,
/// or conflicting formats (`--json` with `--csv`). The special value
/// `"help"` is returned when `--help` was requested.
pub fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--smoke" => flags.smoke = true,
            "--json" => {
                if flags.format == Format::Csv {
                    return Err("--json conflicts with --csv".to_string());
                }
                flags.format = Format::Json;
            }
            "--csv" => {
                if flags.format == Format::Json {
                    return Err("--json conflicts with --csv".to_string());
                }
                flags.format = Format::Csv;
            }
            "--out" => flags.out = Some(value()?),
            "--threads" => {
                let n: usize = value()?
                    .parse()
                    .map_err(|_| "--threads needs a positive integer".to_string())?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                flags.threads = Some(n);
            }
            "--shard-size" => {
                let n: u64 = value()?
                    .parse()
                    .map_err(|_| "--shard-size needs a positive integer".to_string())?;
                if n == 0 {
                    return Err("--shard-size must be at least 1".to_string());
                }
                flags.shard_size = Some(n);
            }
            "--max-ticks" => {
                let n: u64 = value()?
                    .parse()
                    .map_err(|_| "--max-ticks needs a positive integer".to_string())?;
                if n == 0 {
                    return Err("--max-ticks must be at least 1".to_string());
                }
                flags.max_ticks = Some(n);
            }
            "--only" => {
                flags.only = Some(value()?.split(',').map(str::to_string).collect());
            }
            "--compare" => flags.compare = Some(value()?),
            "--tolerance" => {
                let x: f64 = value()?
                    .parse()
                    .map_err(|_| "--tolerance needs a number".to_string())?;
                if !x.is_finite() || x < 0.0 {
                    return Err("--tolerance must be a finite non-negative number".to_string());
                }
                flags.tolerance = x;
            }
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unknown flag {other}; try --help")),
        }
    }
    // `--out` without an explicit format means JSON: a file of Markdown
    // tables is never what CI wants.
    if flags.out.is_some() && flags.format == Format::Table {
        flags.format = Format::Json;
    }
    Ok(flags)
}

/// Renders the chosen format and delivers it to stdout or `--out`.
///
/// # Errors
///
/// Returns a message if the output file cannot be written.
pub fn emit(results: &ResultSet, flags: &Flags) -> Result<(), String> {
    let rendered = match flags.format {
        Format::Table => {
            results.print_tables();
            return Ok(());
        }
        Format::Json => results.to_json(),
        Format::Csv => results.to_csv(),
    };
    match &flags.out {
        Some(path) => {
            std::fs::write(path, rendered).map_err(|e| format!("cannot write {path}: {e}"))
        }
        None => {
            print!("{rendered}");
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(exp: &str, algo: &str, d: u64, work: f64) -> Record {
        let mut metrics = BTreeMap::new();
        metrics.insert("mean_work".to_string(), work);
        metrics.insert("ratio".to_string(), work / 64.0);
        Record {
            experiment: exp.to_string(),
            cell: Cell {
                algo: algo.to_string(),
                adversary: crate::grid::AdversarySpec::Stage,
                p: 4,
                t: 16,
                d,
                seeds: 2,
                cell_seed: 7,
                backend: None,
            },
            metrics,
        }
    }

    #[test]
    fn json_is_deterministic_and_well_formed() {
        let set = ResultSet {
            mode: "smoke".to_string(),
            records: vec![
                record("e01", "soloall", 1, 64.0),
                record("e01", "da:3", 2, 40.5),
            ],
        };
        let a = set.to_json();
        let b = set.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schema_version\": 1"));
        assert!(a.contains("\"mean_work\": 40.5"));
        assert!(a.contains("\"algo\": \"da:3\""));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn json_handles_non_finite_and_escapes() {
        let mut r = record("e01", "a\"b", 1, 1.0);
        r.metrics.insert("bad".to_string(), f64::NAN);
        let set = ResultSet {
            mode: "full".to_string(),
            records: vec![r],
        };
        let json = set.to_json();
        assert!(json.contains("\\\"")); // escaped quote
        assert!(json.contains("\"bad\": null"));
    }

    #[test]
    fn backend_tagged_records_render_the_backend_everywhere() {
        use crate::grid::Backend;
        let mut sim = record("e17", "da:3", 2, 40.0);
        sim.cell.backend = Some(Backend::Sim);
        let mut threads = record("e17", "da:3", 2, 44.0);
        threads.cell.backend = Some(Backend::Threads);
        let set = ResultSet {
            mode: "custom".to_string(),
            records: vec![sim, threads],
        };
        let json = set.to_json();
        assert!(json.contains("\"backend\": \"sim\""));
        assert!(json.contains("\"backend\": \"threads\""));
        let csv = set.to_csv();
        assert!(csv.starts_with("experiment,algo,adversary,backend,p,t,d,seeds,metric,value\n"));
        assert!(csv.contains("e17,da:3,stage,threads,4,16,2,2,mean_work,44"));
        set.print_tables(); // smoke: backend column must not break width math
    }

    #[test]
    fn untagged_records_render_the_legacy_schema() {
        // No `backends=` axis ⇒ not a byte of output changes: the exact
        // guarantee committed baselines rely on.
        let set = ResultSet {
            mode: "smoke".to_string(),
            records: vec![record("e01", "soloall", 1, 64.0)],
        };
        assert!(!set.to_json().contains("backend"));
        assert!(set
            .to_csv()
            .starts_with("experiment,algo,adversary,p,t,d,seeds,metric,value\n"));
    }

    #[test]
    fn csv_has_one_row_per_metric() {
        let set = ResultSet {
            mode: "smoke".to_string(),
            records: vec![record("e01", "soloall", 1, 64.0)],
        };
        let csv = set.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 metrics");
        assert_eq!(
            lines[0],
            "experiment,algo,adversary,p,t,d,seeds,metric,value"
        );
        assert!(lines[1].starts_with("e01,soloall,stage,4,16,1,2,mean_work,"));
    }

    #[test]
    fn flags_parse_and_default() {
        let args = |s: &str| -> Vec<String> { s.split_whitespace().map(String::from).collect() };
        let f = parse_flags(&args(
            "--smoke --json --threads 4 --shard-size 2 --out x.json",
        ))
        .unwrap();
        assert!(f.smoke);
        assert_eq!(f.format, Format::Json);
        assert_eq!(f.threads, Some(4));
        assert_eq!(f.shard_size, Some(2));
        assert_eq!(f.out.as_deref(), Some("x.json"));
        assert_eq!(parse_flags(&[]).unwrap(), Flags::default());
        // --out implies JSON when no format given.
        assert_eq!(
            parse_flags(&args("--out y.json")).unwrap().format,
            Format::Json
        );
        // --only splits.
        assert_eq!(
            parse_flags(&args("--only e01,e05")).unwrap().only,
            Some(vec!["e01".to_string(), "e05".to_string()])
        );
        // --compare / --tolerance.
        let f = parse_flags(&args("--compare base.json --tolerance 0.5")).unwrap();
        assert_eq!(f.compare.as_deref(), Some("base.json"));
        assert_eq!(f.tolerance, 0.5);
        assert_eq!(parse_flags(&[]).unwrap().tolerance, 0.0);
    }

    #[test]
    fn flags_reject_conflicts_and_garbage() {
        let args = |s: &str| -> Vec<String> { s.split_whitespace().map(String::from).collect() };
        assert!(parse_flags(&args("--json --csv")).is_err());
        assert!(parse_flags(&args("--csv --json")).is_err());
        assert!(parse_flags(&args("--threads 0")).is_err());
        assert!(parse_flags(&args("--threads many")).is_err());
        assert!(parse_flags(&args("--shard-size 0")).is_err());
        assert!(parse_flags(&args("--shard-size some")).is_err());
        assert!(parse_flags(&args("--shard-size")).is_err());
        assert!(parse_flags(&args("--max-ticks 0")).is_err());
        assert!(parse_flags(&args("--tolerance -0.1")).is_err());
        assert!(parse_flags(&args("--tolerance nan")).is_err());
        assert!(parse_flags(&args("--tolerance inf")).is_err());
        assert!(parse_flags(&args("--compare")).is_err());
        assert!(parse_flags(&args("--out")).is_err());
        assert!(parse_flags(&args("--frobnicate")).is_err());
        assert_eq!(parse_flags(&args("--help")).unwrap_err(), "help");
    }

    #[test]
    fn tables_print_without_panicking() {
        let set = ResultSet {
            mode: "smoke".to_string(),
            records: vec![
                record("e01", "soloall", 1, 64.0),
                record("e02", "da:3", 2, 9.0),
            ],
        };
        set.print_tables();
    }
}
