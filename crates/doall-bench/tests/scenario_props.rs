//! Property tests for the scenario file format: `Scenario::parse` and
//! `Display` are exact inverses over randomly assembled scenarios —
//! prose, grids, smoke overrides, and the full assertion grammar
//! (filters, guards, aggregates, arithmetic) — and malformed lines
//! report their 1-based line number no matter where they appear.
//! The committed `scenarios/*.scn` files lean on both properties: a
//! scenario that re-parses differently would silently run a different
//! experiment, and an error without a line number is unactionable in a
//! 17-file suite.
//!
//! Random structures are grown from integer draws (masks and a small
//! deterministic gene stream), the same idiom as `grid_props.rs` — the
//! vendored proptest stub has no recursive strategies, and the failing
//! integers reproduce the structure exactly.

use doall_bench::grid::{AdversarySpec, Grid};
use doall_bench::scenario::{AggFn, Assertion, Cmp, Expr, Guard, Scenario};
use proptest::prelude::*;

const ALGO_POOL: &[&str] = &["soloall", "da:3", "paran1", "padet", "gossip:2"];
const ADV_POOL: &[&str] = &["unit", "fixed", "lb:2", "crash:25@burst", "straggler:25:4"];

/// Metric names (and aliases, and cell parameters) for `Var` leaves.
const VAR_POOL: &[&str] = &[
    "work",
    "messages",
    "p",
    "t",
    "d",
    "seeds",
    "mean_work",
    "ratio_quadratic",
    "crash_count",
    "dcont",
    "lb_bound",
];

/// `[key=value]` selector pairs that survive the tokenizer verbatim.
const FILTER_POOL: &[(&str, &str)] = &[
    ("algo", "paran1"),
    ("algo", "da:3"),
    ("adversary", "crash:25@burst"),
    ("backend", "sim"),
    ("p", "8"),
    ("t", "32"),
    ("d", "4"),
];

const CMP_POOL: &[Cmp] = &[Cmp::Le, Cmp::Ge, Cmp::Lt, Cmp::Gt, Cmp::Eq, Cmp::Ne];
const AGG_POOL: &[AggFn] = &[AggFn::Min, AggFn::Max, AggFn::Mean, AggFn::Sum];

/// Words prose lines are assembled from: trim-stable, comment-safe, and
/// free of newlines, so `Display` → trim → parse keeps them verbatim
/// (values may contain `=`; only the first `=` splits the key).
const WORD_POOL: &[&str] = &[
    "forced",
    "work",
    "d=2t",
    "p·t",
    "(Thm 3.1)",
    "Θ(1)",
    "band.",
    "ratio_lb",
    "{t, 2t}",
];

/// A tiny deterministic stream expanding one `u64` seed into the many
/// draws a recursive structure needs. Reproducible from the reported
/// failing input by construction.
struct Gene(u64);

impl Gene {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 33
    }

    fn pick<'p, T: ?Sized>(&mut self, pool: &'p [&'p T]) -> &'p T {
        pool[self.next() as usize % pool.len()]
    }
}

fn subset(pool: &[&str], mask: u32) -> Vec<String> {
    pool.iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, key)| (*key).to_string())
        .collect()
}

fn dedup_keep_order<T: Clone + Ord>(values: &[T]) -> Vec<T> {
    let mut seen = std::collections::BTreeSet::new();
    values
        .iter()
        .filter(|v| seen.insert((*v).clone()))
        .cloned()
        .collect()
}

fn arbitrary_grid(g: &mut Gene) -> Grid {
    let algo_mask = 1 + (g.next() as u32 % ((1 << ALGO_POOL.len()) - 1));
    let adv_mask = 1 + (g.next() as u32 % ((1 << ADV_POOL.len()) - 1));
    let shapes: Vec<(usize, usize)> = (0..1 + g.next() % 3)
        .map(|_| (1 + g.next() as usize % 32, 1 + g.next() as usize % 64))
        .collect();
    let ds: Vec<u64> = (0..1 + g.next() % 3).map(|_| 1 + g.next() % 64).collect();
    Grid {
        algos: subset(ALGO_POOL, algo_mask),
        adversaries: subset(ADV_POOL, adv_mask)
            .iter()
            .map(|key| AdversarySpec::parse(key).expect("pool keys are valid"))
            .collect(),
        shapes: dedup_keep_order(&shapes),
        ds: dedup_keep_order(&ds),
        backends: Vec::new(),
        seeds: 1 + g.next() % 10,
        base_seed: g.next(),
    }
}

/// Positive finite literals; `Display` prints the shortest decimal that
/// round-trips, so any such value survives `parse ∘ render` exactly.
fn arbitrary_num(g: &mut Gene) -> Expr {
    #[allow(clippy::cast_precision_loss)]
    Expr::Num((g.next() % 10_000) as f64 + (g.next() % 100) as f64 / 100.0)
}

/// A random expression tree. `agg` selects the scope's leaf alphabet:
/// aggregate expressions wrap every metric in `min/max/mean/sum` and
/// carry no bare variables (`Assertion::validate` enforces exactly
/// that), cell expressions are the reverse.
fn arbitrary_expr(g: &mut Gene, depth: u32, agg: bool) -> Expr {
    let choice = if depth == 0 {
        g.next() % 2
    } else {
        g.next() % 7
    };
    let sub = |g: &mut Gene| Box::new(arbitrary_expr(g, depth - 1, agg));
    match choice {
        0 => arbitrary_num(g),
        1 => {
            let metric = g.pick(VAR_POOL).to_string();
            if agg {
                Expr::Agg(AGG_POOL[g.next() as usize % AGG_POOL.len()], metric)
            } else {
                Expr::Var(metric)
            }
        }
        2 => Expr::Add(sub(g), sub(g)),
        3 => Expr::Sub(sub(g), sub(g)),
        4 => Expr::Mul(sub(g), sub(g)),
        5 => Expr::Div(sub(g), sub(g)),
        _ => {
            if agg {
                Expr::Mul(sub(g), sub(g))
            } else {
                Expr::Ratio(sub(g), sub(g))
            }
        }
    }
}

fn arbitrary_cmp(g: &mut Gene) -> Cmp {
    CMP_POOL[g.next() as usize % CMP_POOL.len()]
}

fn arbitrary_assertion(g: &mut Gene) -> Assertion {
    let aggregate = g.next() % 3 == 0;
    let filters: Vec<(String, String)> = (0..g.next() % 3)
        .map(|_| {
            let (k, v) = FILTER_POOL[g.next() as usize % FILTER_POOL.len()];
            (k.to_string(), v.to_string())
        })
        .collect();
    let guard = if !aggregate && g.next() % 2 == 0 {
        Some(Guard {
            lhs: arbitrary_expr(g, 1, false),
            cmp: arbitrary_cmp(g),
            rhs: arbitrary_expr(g, 1, false),
        })
    } else {
        None
    };
    Assertion {
        aggregate,
        filters,
        lhs: arbitrary_expr(g, 2, aggregate),
        cmp: arbitrary_cmp(g),
        rhs: arbitrary_expr(g, 2, aggregate),
        guard,
    }
}

fn arbitrary_prose(g: &mut Gene) -> String {
    let words: Vec<&str> = (0..1 + g.next() % 5).map(|_| g.pick(WORD_POOL)).collect();
    words.join(" ")
}

fn arbitrary_id(g: &mut Gene) -> String {
    const ID_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_-";
    (0..1 + g.next() % 12)
        .map(|_| char::from(ID_CHARS[g.next() as usize % ID_CHARS.len()]))
        .collect()
}

fn arbitrary_scenario(seed: u64) -> Scenario {
    let g = &mut Gene(seed);
    Scenario {
        id: arbitrary_id(g),
        title: if g.next() % 2 == 0 {
            arbitrary_prose(g)
        } else {
            String::new()
        },
        setup: if g.next() % 2 == 0 {
            arbitrary_prose(g)
        } else {
            String::new()
        },
        notes: if g.next() % 2 == 0 {
            arbitrary_prose(g)
        } else {
            String::new()
        },
        trace: g.next() % 4 == 0,
        max_ticks: (g.next() % 2 == 0).then(|| 1 + g.next() % 100_000_000),
        grids: (0..1 + g.next() % 2).map(|_| arbitrary_grid(g)).collect(),
        smoke: (0..g.next() % 2).map(|_| arbitrary_grid(g)).collect(),
        derive: (g.next() % 2 == 0)
            .then(|| g.pick(&["ratio_quadratic", "lower_bound"][..]).to_string()),
        asserts: (0..g.next() % 4).map(|_| arbitrary_assertion(g)).collect(),
    }
}

proptest! {
    /// The headline property: `Scenario::parse(s.to_string()) == s` for
    /// scenarios assembled from random parts, and rendering is a fixed
    /// point (`render ∘ parse ∘ render ≡ render`).
    #[test]
    fn scenario_parse_render_round_trips(seed in any::<u64>()) {
        let s = arbitrary_scenario(seed);
        let rendered = s.to_string();
        let reparsed = match Scenario::parse(&rendered) {
            Ok(r) => r,
            Err(e) => return Err(TestCaseError::fail(format!(
                "rendered scenario must parse: {e}\n{rendered}"
            ))),
        };
        prop_assert_eq!(&reparsed, &s, "round-trip changed the scenario:\n{}", rendered);
        prop_assert_eq!(reparsed.to_string(), rendered);
    }

    /// Same for assertion lines alone — the grammar with filters,
    /// guards, aggregates, precedence, and `ratio(…)`.
    #[test]
    fn assertion_parse_render_round_trips(seed in any::<u64>()) {
        let a = arbitrary_assertion(&mut Gene(seed));
        let rendered = a.to_string();
        let reparsed = match Assertion::parse(&rendered) {
            Ok(r) => r,
            Err(e) => return Err(TestCaseError::fail(format!(
                "rendered assertion must parse: {e}\n{rendered}"
            ))),
        };
        prop_assert_eq!(&reparsed, &a, "round-trip changed `{}`", rendered);
        prop_assert_eq!(reparsed.to_string(), rendered);
    }

    /// A malformed line injected anywhere into a valid scenario is
    /// reported with exactly its 1-based line number.
    #[test]
    fn malformed_lines_report_their_line_number(
        seed in any::<u64>(),
        pick in any::<u64>(),
        bad_pick in 0u64..5,
    ) {
        const BAD: &[&str] = &[
            "frobnicate",
            "wat = 1",
            "assert work >= t trailing",
            "assert [color=red] work >= 1",
            "trace = maybe",
        ];
        // `trace = maybe` must not be shadowed by an earlier
        // duplicate-`trace` error, so keep the base trace-free.
        let mut s = arbitrary_scenario(seed);
        s.trace = false;
        let rendered = s.to_string();
        let mut lines: Vec<&str> = rendered.lines().collect();
        let at = pick as usize % (lines.len() + 1);
        let bad = BAD[bad_pick as usize];
        lines.insert(at, bad);
        let text = lines.join("\n");
        let e = match Scenario::parse(&text) {
            Err(e) => e,
            Ok(_) => return Err(TestCaseError::fail(format!(
                "`{bad}` at line {} must fail parsing:\n{text}",
                at + 1
            ))),
        };
        prop_assert_eq!(e.line, at + 1, "wrong line for `{}`: {}", bad, e);
    }
}

/// The committed suite's own files satisfy the round-trip property, not
/// just synthetic ones — so hand-edits that would re-parse differently
/// are caught here.
#[test]
fn committed_scenarios_round_trip() {
    let dir = doall_bench::scenarios_dir();
    let paths = doall_bench::suite::discover(&dir).expect("committed suite discovers");
    assert!(!paths.is_empty());
    for path in paths {
        let text = std::fs::read_to_string(&path).unwrap();
        let s = Scenario::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let reparsed = Scenario::parse(&s.to_string()).unwrap();
        assert_eq!(reparsed, s, "{}", path.display());
        assert_eq!(reparsed.to_string(), s.to_string(), "{}", path.display());
    }
}
