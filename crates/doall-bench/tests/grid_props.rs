//! Property tests for the grid spec language: `Grid::parse` and
//! `Display` round-trip over random axis contents, and duplicate axis
//! values are always rejected — the invariants the sweep engine and the
//! baseline comparator lean on (cells are keyed by their parameters, so
//! a spec that re-parses differently or expands to duplicate cells would
//! silently corrupt results).

use doall_bench::grid::Grid;
use proptest::prelude::*;

/// Every algorithm key the grid language accepts, including the
/// parameterized families at a few parameter points.
const ALGO_POOL: &[&str] = &[
    "soloall",
    "oblido",
    "oblido-searched",
    "oblido-worst",
    "da:2",
    "da:5",
    "da:8",
    "paran1",
    "paran2",
    "padet",
    "padet-rot",
    "padet-affine",
    "gossip:1",
    "gossip:7",
    "none",
];

/// Every adversary key, with crash percentages at the boundaries.
const ADV_POOL: &[&str] = &[
    "unit",
    "fixed",
    "random",
    "stage",
    "bursty",
    "lb",
    "lbrand",
    "crash:0",
    "crash:37",
    "crash:100",
];

/// Selects the pool entries named by a non-zero bitmask — a cheap way to
/// draw a random non-empty *unique* subset, in pool order.
fn subset(pool: &[&str], mask: u32) -> Vec<String> {
    pool.iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, key)| (*key).to_string())
        .collect()
}

/// First-occurrence dedup that keeps the original order (axis order is
/// part of the spec and must survive the round-trip as-is).
fn dedup_keep_order<T: Clone + Ord>(values: &[T]) -> Vec<T> {
    let mut seen = std::collections::BTreeSet::new();
    values
        .iter()
        .filter(|v| seen.insert((*v).clone()))
        .cloned()
        .collect()
}

fn arbitrary_grid(
    algo_mask: u32,
    adv_mask: u32,
    raw_shapes: &[(usize, usize)],
    raw_ds: &[u64],
    seeds: u64,
    base_seed: u64,
) -> Grid {
    Grid {
        algos: subset(ALGO_POOL, algo_mask),
        adversaries: subset(ADV_POOL, adv_mask),
        shapes: dedup_keep_order(raw_shapes),
        ds: dedup_keep_order(raw_ds),
        seeds,
        base_seed,
    }
}

proptest! {
    /// The headline ROADMAP property: `Grid::parse(g.to_string()) == g`
    /// for grids assembled from random axis contents.
    #[test]
    fn parse_display_round_trips(
        algo_mask in 1u32..(1 << ALGO_POOL.len()),
        adv_mask in 1u32..(1 << ADV_POOL.len()),
        raw_shapes in prop::collection::vec((1usize..=64, 1usize..=512), 1..6),
        raw_ds in prop::collection::vec(1u64..=256, 1..6),
        seeds in 1u64..=50,
        base_seed in any::<u64>(),
    ) {
        let grid = arbitrary_grid(algo_mask, adv_mask, &raw_shapes, &raw_ds, seeds, base_seed);
        prop_assert!(grid.validate().is_ok(), "constructed grids are valid: {grid}");
        let spec = grid.to_string();
        let reparsed = Grid::parse(&spec);
        prop_assert!(reparsed.is_ok(), "canonical spec `{spec}` must parse");
        let reparsed = reparsed.unwrap();
        prop_assert_eq!(&reparsed, &grid, "round-trip changed the grid for `{}`", spec);
        // Fixed point: rendering the reparsed grid reproduces the spec.
        prop_assert_eq!(reparsed.to_string(), spec);
        // And equal grids expand to equal cells (same seeds, same order).
        prop_assert_eq!(reparsed.cells(), grid.cells());
    }

    /// Duplicating any single value in any axis must be rejected — by
    /// `validate()` on the struct and by `parse()` on the rendered spec.
    #[test]
    fn duplicate_axis_values_are_rejected(
        algo_mask in 1u32..(1 << ALGO_POOL.len()),
        adv_mask in 1u32..(1 << ADV_POOL.len()),
        raw_shapes in prop::collection::vec((1usize..=64, 1usize..=512), 1..5),
        raw_ds in prop::collection::vec(1u64..=256, 1..5),
        axis in 0usize..4,
        pick in any::<u64>(),
        seeds in 1u64..=50,
    ) {
        let good = arbitrary_grid(algo_mask, adv_mask, &raw_shapes, &raw_ds, seeds, 0);
        let mut bad = good.clone();
        // Duplicate one existing element of the chosen axis.
        match axis {
            0 => {
                let v = bad.algos[pick as usize % bad.algos.len()].clone();
                bad.algos.push(v);
            }
            1 => {
                let v = bad.adversaries[pick as usize % bad.adversaries.len()].clone();
                bad.adversaries.push(v);
            }
            2 => {
                let v = bad.shapes[pick as usize % bad.shapes.len()];
                bad.shapes.push(v);
            }
            _ => {
                let v = bad.ds[pick as usize % bad.ds.len()];
                bad.ds.push(v);
            }
        }
        let err = bad.validate();
        prop_assert!(err.is_err(), "duplicate in axis {axis} accepted: {bad}");
        prop_assert!(
            err.unwrap_err().to_string().contains("duplicate"),
            "error should name the duplicate"
        );
        prop_assert!(
            Grid::parse(&bad.to_string()).is_err(),
            "rendered duplicate spec `{}` must not parse",
            bad
        );
        // The untouched grid still parses — the rejection is specific.
        prop_assert!(Grid::parse(&good.to_string()).is_ok());
    }
}
