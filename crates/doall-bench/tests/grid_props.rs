//! Property tests for the grid spec language: `Grid::parse` and
//! `Display` round-trip over random axis contents — including the
//! parameterized adversary grammar — duplicate axis values are always
//! rejected, and numeric adversary knobs canonicalize to one spelling.
//! These are the invariants the sweep engine and the baseline comparator
//! lean on (cells are keyed by their parameters, so a spec that
//! re-parses differently or expands to duplicate cells would silently
//! corrupt results).

use doall_bench::grid::{AdversarySpec, Backend, CrashStagger, Grid};
use proptest::prelude::*;

/// Every algorithm key the grid language accepts, including the
/// parameterized families at a few parameter points.
const ALGO_POOL: &[&str] = &[
    "soloall",
    "oblido",
    "oblido-searched",
    "oblido-worst",
    "da:2",
    "da:5",
    "da:8",
    "paran1",
    "paran2",
    "padet",
    "padet-rot",
    "padet-affine",
    "gossip:1",
    "gossip:7",
    "none",
];

/// Every adversary family, with the knobs at a few parameter points.
/// Entries are canonical spellings (parsing any of them and re-rendering
/// reproduces the entry), so subsets are duplicate-free as specs too.
const ADV_POOL: &[&str] = &[
    "unit",
    "fixed",
    "random",
    "stage",
    "bursty",
    "bursty:3",
    "bursty:64",
    "lb",
    "lb:2",
    "lbrand",
    "lbrand:9",
    "crash:0",
    "crash:37",
    "crash:100",
    "crash:37@burst",
    "crash:37@front",
    "crash:100@burst",
    "straggler:25:2",
    "straggler:25:4",
    "straggler:100:3",
];

/// Selects the pool entries named by a non-zero bitmask — a cheap way to
/// draw a random non-empty *unique* subset, in pool order.
fn subset(pool: &[&str], mask: u32) -> Vec<String> {
    pool.iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, key)| (*key).to_string())
        .collect()
}

fn adversary_subset(mask: u32) -> Vec<AdversarySpec> {
    subset(ADV_POOL, mask)
        .iter()
        .map(|key| AdversarySpec::parse(key).expect("pool keys are valid"))
        .collect()
}

/// First-occurrence dedup that keeps the original order (axis order is
/// part of the spec and must survive the round-trip as-is).
fn dedup_keep_order<T: Clone + Ord>(values: &[T]) -> Vec<T> {
    let mut seen = std::collections::BTreeSet::new();
    values
        .iter()
        .filter(|v| seen.insert((*v).clone()))
        .cloned()
        .collect()
}

/// The backends axis drawn from a 2-bit mask: `0` is the legacy
/// axis-omitted grid, the rest are every explicit non-empty subset.
fn backend_subset(mask: u32) -> Vec<Backend> {
    [Backend::Sim, Backend::Threads]
        .into_iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, b)| b)
        .collect()
}

fn arbitrary_grid(
    algo_mask: u32,
    adv_mask: u32,
    backend_mask: u32,
    raw_shapes: &[(usize, usize)],
    raw_ds: &[u64],
    seeds: u64,
    base_seed: u64,
) -> Grid {
    Grid {
        algos: subset(ALGO_POOL, algo_mask),
        adversaries: adversary_subset(adv_mask),
        shapes: dedup_keep_order(raw_shapes),
        ds: dedup_keep_order(raw_ds),
        backends: backend_subset(backend_mask),
        seeds,
        base_seed,
    }
}

proptest! {
    /// The headline ROADMAP property: `Grid::parse(g.to_string()) == g`
    /// for grids assembled from random axis contents — adversary knobs
    /// included.
    #[test]
    fn parse_display_round_trips(
        algo_mask in 1u32..(1 << ALGO_POOL.len()),
        adv_mask in 1u32..(1 << ADV_POOL.len()),
        backend_mask in 0u32..4,
        raw_shapes in prop::collection::vec((1usize..=64, 1usize..=512), 1..6),
        raw_ds in prop::collection::vec(1u64..=256, 1..6),
        seeds in 1u64..=50,
        base_seed in any::<u64>(),
    ) {
        let grid = arbitrary_grid(
            algo_mask, adv_mask, backend_mask, &raw_shapes, &raw_ds, seeds, base_seed,
        );
        prop_assert!(grid.validate().is_ok(), "constructed grids are valid: {grid}");
        let spec = grid.to_string();
        // The default (legacy) axis is omitted from the rendering; any
        // explicit axis — even a sim-only one — is kept explicit.
        prop_assert_eq!(
            spec.contains("backends="),
            !grid.backends.is_empty(),
            "backends axis rendering for `{}`", spec
        );
        let reparsed = Grid::parse(&spec);
        prop_assert!(reparsed.is_ok(), "canonical spec `{spec}` must parse");
        let reparsed = reparsed.unwrap();
        prop_assert_eq!(&reparsed, &grid, "round-trip changed the grid for `{}`", spec);
        // Fixed point: rendering the reparsed grid reproduces the spec.
        prop_assert_eq!(reparsed.to_string(), spec);
        // And equal grids expand to equal cells (same seeds, same order).
        prop_assert_eq!(reparsed.cells(), grid.cells());
    }

    /// Random `AdversarySpec`s round-trip through their rendered spelling,
    /// and numeric knobs canonicalize: zero-padding or an explicit default
    /// stagger never creates a second spelling of the same adversary.
    #[test]
    fn adversary_specs_round_trip_and_canonicalize(
        pct in 0u64..=100,
        straggler_pct in 1u64..=100,
        period in 1u64..=512,
        stage in 1u64..=512,
        slowdown in 2u64..=64,
        pad in 1usize..=4,
        stagger_pick in 0usize..3,
    ) {
        let stagger = [CrashStagger::Even, CrashStagger::Burst, CrashStagger::Front]
            [stagger_pick];
        let specs = [
            AdversarySpec::Bursty { period: Some(period) },
            AdversarySpec::Lb { stage: Some(stage) },
            AdversarySpec::Lbrand { stage: Some(stage) },
            AdversarySpec::Crash { pct, stagger },
            AdversarySpec::Straggler { pct: straggler_pct, slowdown },
        ];
        for spec in specs {
            let rendered = spec.to_string();
            prop_assert_eq!(AdversarySpec::parse(&rendered).unwrap(), spec);
        }
        // Zero-padded numeric knobs parse to the same spec as the
        // canonical spelling (the old bug gave `crash:07` and `crash:7`
        // distinct cell identities) …
        let padded = format!("crash:{pct:0pad$}@{}", stagger.label());
        let canonical = AdversarySpec::Crash { pct, stagger };
        prop_assert_eq!(AdversarySpec::parse(&padded).unwrap(), canonical);
        // … and Display emits exactly one spelling, with default knobs
        // elided.
        let rendered = canonical.to_string();
        if stagger == CrashStagger::Even {
            prop_assert_eq!(&rendered, &format!("crash:{pct}"));
        } else {
            prop_assert_eq!(&rendered, &format!("crash:{pct}@{}", stagger.label()));
        }
        let padded_bursty = format!("bursty:{period:0pad$}");
        prop_assert_eq!(
            AdversarySpec::parse(&padded_bursty).unwrap().to_string(),
            format!("bursty:{period}")
        );
        let padded_straggler = format!("straggler:{straggler_pct:0pad$}:{slowdown:0pad$}");
        prop_assert_eq!(
            AdversarySpec::parse(&padded_straggler).unwrap().to_string(),
            format!("straggler:{straggler_pct}:{slowdown}")
        );
    }

    /// Duplicating any single value in any axis must be rejected — by
    /// `validate()` on the struct and by `parse()` on the rendered spec.
    #[test]
    fn duplicate_axis_values_are_rejected(
        algo_mask in 1u32..(1 << ALGO_POOL.len()),
        adv_mask in 1u32..(1 << ADV_POOL.len()),
        backend_mask in 0u32..4,
        raw_shapes in prop::collection::vec((1usize..=64, 1usize..=512), 1..5),
        raw_ds in prop::collection::vec(1u64..=256, 1..5),
        axis in 0usize..5,
        pick in any::<u64>(),
        seeds in 1u64..=50,
    ) {
        let good = arbitrary_grid(
            algo_mask, adv_mask, backend_mask, &raw_shapes, &raw_ds, seeds, 0,
        );
        let mut bad = good.clone();
        // Duplicate one existing element of the chosen axis.
        match axis {
            0 => {
                let v = bad.algos[pick as usize % bad.algos.len()].clone();
                bad.algos.push(v);
            }
            1 => {
                let v = bad.adversaries[pick as usize % bad.adversaries.len()];
                bad.adversaries.push(v);
            }
            2 => {
                let v = bad.shapes[pick as usize % bad.shapes.len()];
                bad.shapes.push(v);
            }
            3 => {
                let v = bad.ds[pick as usize % bad.ds.len()];
                bad.ds.push(v);
            }
            _ => {
                // A legacy grid has no backend to duplicate — make the
                // axis explicit first, then double it.
                if bad.backends.is_empty() {
                    bad.backends.push(Backend::Sim);
                }
                let v = bad.backends[pick as usize % bad.backends.len()];
                bad.backends.push(v);
            }
        }
        let err = bad.validate();
        prop_assert!(err.is_err(), "duplicate in axis {axis} accepted: {bad}");
        prop_assert!(
            err.unwrap_err().to_string().contains("duplicate"),
            "error should name the duplicate"
        );
        prop_assert!(
            Grid::parse(&bad.to_string()).is_err(),
            "rendered duplicate spec `{}` must not parse",
            bad
        );
        // The untouched grid still parses — the rejection is specific.
        prop_assert!(Grid::parse(&good.to_string()).is_ok());
    }
}

#[test]
fn malformed_adversary_knobs_are_rejected_with_useful_errors() {
    for (bad, needle) in [
        ("bursty:0", "at least 1"),
        ("bursty:soon", "not a number"),
        ("crash:150@even", "0–100"),
        ("crash:25@sideways", "even|burst|front"),
        ("crash", "crash:<pct>"),
        ("lb:0", "at least 1"),
        ("straggler:0:3", "1–100"),
        ("straggler:25:1", "at least 2"),
        ("unit:4", "takes no parameter"),
        ("frobnicate", "unknown adversary"),
    ] {
        let e = AdversarySpec::parse(bad)
            .expect_err(&format!("`{bad}` should fail"))
            .to_string();
        assert!(e.contains(needle), "`{bad}` error `{e}` lacks `{needle}`");
        // And the same rejection surfaces through a full grid spec.
        assert!(
            Grid::parse(&format!("algos=paran1 advs={bad} shapes=4x8")).is_err(),
            "`{bad}` accepted inside a grid"
        );
    }
}

#[test]
fn malformed_backend_tokens_are_rejected_with_useful_errors() {
    for (bad, needle) in [
        ("backends=gpu", "unknown backend"),
        ("backends=Sim", "unknown backend"),
        ("backends=", "unknown backend"),
        ("backends=threads,threads", "duplicate"),
    ] {
        let e = Grid::parse(&format!("algos=paran1 advs=unit shapes=4x8 {bad}"))
            .expect_err(&format!("`{bad}` should fail"))
            .to_string();
        assert!(e.contains(needle), "`{bad}` error `{e}` lacks `{needle}`");
    }
    // The valid tokens, and only those, parse.
    assert_eq!(Backend::parse("sim").unwrap(), Backend::Sim);
    assert_eq!(Backend::parse("threads").unwrap(), Backend::Threads);
}

#[test]
fn bare_legacy_keys_parse_to_documented_defaults() {
    use doall_bench::grid::{DEFAULT_STRAGGLER_PCT, DEFAULT_STRAGGLER_SLOWDOWN};
    assert_eq!(
        AdversarySpec::parse("bursty").unwrap(),
        AdversarySpec::Bursty { period: None }
    );
    assert_eq!(
        AdversarySpec::parse("lb").unwrap(),
        AdversarySpec::Lb { stage: None }
    );
    assert_eq!(
        AdversarySpec::parse("lbrand").unwrap(),
        AdversarySpec::Lbrand { stage: None }
    );
    assert_eq!(
        AdversarySpec::parse("crash:25").unwrap(),
        AdversarySpec::Crash {
            pct: 25,
            stagger: CrashStagger::Even,
        }
    );
    assert_eq!(
        AdversarySpec::parse("straggler").unwrap(),
        AdversarySpec::Straggler {
            pct: DEFAULT_STRAGGLER_PCT,
            slowdown: DEFAULT_STRAGGLER_SLOWDOWN,
        }
    );
    // A legacy spec renders identically to its pre-parameterization form,
    // so old baselines keep their cell identities.
    let grid = Grid::parse("algos=paran1 advs=bursty,crash:50,lb shapes=4x8").unwrap();
    assert_eq!(
        grid.to_string(),
        "algos=paran1 advs=bursty,crash:50,lb shapes=4x8 ds=1 seeds=1 seed=0"
    );
}
