//! The harness's core guarantee: thread count *and* shard size change
//! wall-clock only, never a byte of output.
//!
//! Cells are seeded from their own parameters, each replicate's seed from
//! its absolute index (not execution order), and per-shard results are
//! merged back in replicate order — so every `--threads` × `--shard-size`
//! combination must render byte-identical JSON/CSV, trace mode included.
//! These tests run the library path the binaries' flags feed into.

use doall_bench::compare::MEASURED_ONLY_METRICS;
use doall_bench::grid::{Backend, Grid};
use doall_bench::output::{Record, ResultSet};
use doall_bench::sweep::{run_cells, run_cells_with_stats, SweepConfig};

fn render_with(grid: &Grid, cfg: &SweepConfig) -> (String, String) {
    let measurements = run_cells(&grid.cells(), cfg).expect("grid runs");
    let records: Vec<Record> = measurements
        .into_iter()
        .map(|m| Record {
            experiment: "determinism".to_string(),
            metrics: m.metrics(),
            cell: m.cell,
        })
        .collect();
    let set = ResultSet {
        mode: "custom".to_string(),
        records,
    };
    (set.to_json(), set.to_csv())
}

fn render(grid: &Grid, threads: usize) -> (String, String) {
    render_with(
        grid,
        &SweepConfig {
            threads,
            ..SweepConfig::default()
        },
    )
}

/// A grid wide enough to make scheduling races visible: randomized
/// algorithms, seeded and knob-parameterized adversaries, replicates,
/// and more cells than workers so claim order varies between runs.
fn racy_grid() -> Grid {
    Grid::parse(
        "algos=paran1,paran2,da:2,padet \
         advs=stage,random,fixed,bursty:2,crash:50@front,straggler:50:2 shapes=4x8,8x8 ds=1,2 \
         seeds=3 seed=11",
    )
    .expect("valid grid")
}

/// A single big-ish cell: the shape sharding exists for. Its seeds split
/// into shards whichever way `--shard-size` says, so every chunking must
/// merge back to the same bytes.
fn one_cell_grid() -> Grid {
    Grid::parse("algos=paran1 advs=random shapes=8x32 ds=2 seeds=7 seed=23").expect("valid grid")
}

#[test]
fn threads_1_and_8_render_byte_identical_json_and_csv() {
    let grid = racy_grid();
    let (json1, csv1) = render(&grid, 1);
    let (json8, csv8) = render(&grid, 8);
    assert_eq!(json1, json8, "JSON must not depend on thread count");
    assert_eq!(csv1, csv8, "CSV must not depend on thread count");
    // And the output is non-trivial: every cell produced metrics.
    assert_eq!(json1.matches("\"mean_work\"").count(), grid.cells().len());
}

#[test]
fn threads_times_shard_size_renders_byte_identical_output() {
    // The strengthened invariant: {threads 1, 8} × {shard 1, auto, seeds}
    // all collapse to one byte string, on both a many-cell grid and a
    // single-cell grid (where auto sharding actually splits the cell).
    for grid in [racy_grid(), one_cell_grid()] {
        let seeds = grid.seeds;
        let baseline = render(&grid, 1);
        for threads in [1, 8] {
            for shard_size in [Some(1), None, Some(seeds)] {
                let out = render_with(
                    &grid,
                    &SweepConfig {
                        threads,
                        shard_size,
                        ..SweepConfig::default()
                    },
                );
                assert_eq!(
                    out, baseline,
                    "grid `{grid}`: threads={threads} shard_size={shard_size:?} \
                     must not change a byte"
                );
            }
        }
    }
}

#[test]
fn trace_mode_is_threads_and_shard_invariant() {
    // Trace mode used to be a sequential special case inside the per-cell
    // runner; now it shards like everything else, and the execution
    // profiles must merge back to identical means.
    let grid =
        Grid::parse("algos=oblido,paran1 advs=stage shapes=4x8 ds=2 seeds=5 seed=3").unwrap();
    let cfg = |threads: usize, shard_size: Option<u64>| SweepConfig {
        threads,
        shard_size,
        trace: true,
        ..SweepConfig::default()
    };
    let baseline = render_with(&grid, &cfg(1, Some(5)));
    assert!(
        baseline.0.contains("\"mean_primary\""),
        "trace metrics present"
    );
    for threads in [1, 8] {
        for shard_size in [Some(1), Some(2), None] {
            let out = render_with(&grid, &cfg(threads, shard_size));
            assert_eq!(
                out, baseline,
                "traced threads={threads} shard_size={shard_size:?}"
            );
        }
    }
}

#[test]
fn single_cell_grids_schedule_multiple_shards() {
    // One cell, seeds=7, four workers: the auto rule must split the cell
    // (ceil(7/4) = 2 seeds per shard → 4 shards) instead of pinning one
    // thread, and explicit --shard-size 1 must fan all the way out.
    let cells = one_cell_grid().cells();
    let (_, auto) = run_cells_with_stats(
        &cells,
        &SweepConfig {
            threads: 4,
            ..SweepConfig::default()
        },
    )
    .expect("grid runs");
    assert_eq!(auto.shards, 4);
    assert_eq!(auto.workers, 4);
    let (_, fine) = run_cells_with_stats(
        &cells,
        &SweepConfig {
            threads: 4,
            shard_size: Some(1),
            ..SweepConfig::default()
        },
    )
    .expect("grid runs");
    assert_eq!(fine.shards, 7);
}

#[test]
fn explicit_sim_axis_changes_schema_but_not_results() {
    // `backends=sim` opts the grid into the extended schema (backend tags,
    // zero-valued measured-only metrics) but must not move a single
    // simulated number: cell seeds ignore the backend axis entirely.
    let legacy =
        Grid::parse("algos=paran1,da:2 advs=stage,crash:50@front shapes=4x8 ds=2 seeds=3 seed=11")
            .expect("valid grid");
    let tagged = Grid::parse(
        "algos=paran1,da:2 advs=stage,crash:50@front backends=sim shapes=4x8 ds=2 seeds=3 seed=11",
    )
    .expect("valid grid");
    let cfg = SweepConfig::default();
    let legacy_runs = run_cells(&legacy.cells(), &cfg).expect("legacy grid runs");
    let tagged_runs = run_cells(&tagged.cells(), &cfg).expect("tagged grid runs");
    assert_eq!(legacy_runs.len(), tagged_runs.len());
    for (l, t) in legacy_runs.iter().zip(&tagged_runs) {
        assert_eq!(l.cell.backend, None, "legacy cells stay untagged");
        assert_eq!(t.cell.backend, Some(Backend::Sim));
        let lm = l.metrics();
        let mut tm = t.metrics();
        for key in MEASURED_ONLY_METRICS {
            match tm.remove(*key) {
                Some(v) => assert_eq!(v, 0.0, "{key} must be zero under sim"),
                None => assert_eq!(
                    l.cell.algo, "none",
                    "{key} missing on a tagged measuring cell"
                ),
            }
            assert!(!lm.contains_key(*key), "{key} leaked into legacy schema");
        }
        assert_eq!(lm, tm, "sim results diverged for cell `{}`", l.cell.algo);
    }
}

#[test]
fn mixed_backend_grids_keep_sim_cells_byte_identical() {
    // Satellite invariant: adding real-thread cells to a grid must not
    // perturb its sim cells, whatever the harness parallelism. Threads
    // cells are excluded from the byte comparison — their wall-clock
    // metrics are measurements, not computations.
    let grid = Grid::parse(
        "algos=paran1 advs=unit,crash:50 backends=sim,threads shapes=2x8 ds=2 seeds=2 seed=5",
    )
    .expect("valid grid");
    let render_sim = |threads: usize, shard_size: Option<u64>| {
        let measurements = run_cells(
            &grid.cells(),
            &SweepConfig {
                threads,
                shard_size,
                ..SweepConfig::default()
            },
        )
        .expect("mixed grid runs");
        let records: Vec<Record> = measurements
            .into_iter()
            .filter(|m| m.cell.effective_backend() == Backend::Sim)
            .map(|m| Record {
                experiment: "determinism".to_string(),
                metrics: m.metrics(),
                cell: m.cell,
            })
            .collect();
        assert_eq!(records.len(), 2, "one sim record per scenario");
        ResultSet {
            mode: "custom".to_string(),
            records,
        }
        .to_json()
    };
    let baseline = render_sim(1, None);
    for threads in [1, 8] {
        for shard_size in [Some(1), None] {
            assert_eq!(
                render_sim(threads, shard_size),
                baseline,
                "threads={threads} shard_size={shard_size:?} moved a sim byte"
            );
        }
    }
}

#[test]
fn threads_backend_does_real_work_and_fires_crashes() {
    // The smoke contract for the measured substrate: every processor
    // steps at least once (W ≥ t is impossible to fake), the crash
    // adversary actually kills workers, and wall-clock time is real.
    let grid =
        Grid::parse("algos=paran1 advs=crash:50 backends=threads shapes=4x16 ds=2 seeds=2 seed=3")
            .expect("valid grid");
    let measurements =
        run_cells(&grid.cells(), &SweepConfig::default()).expect("threads grid runs");
    for m in &measurements {
        let metrics = m.metrics();
        assert!(
            metrics["mean_work"] >= m.cell.t as f64,
            "threads cell did less work ({}) than tasks ({})",
            metrics["mean_work"],
            m.cell.t
        );
        assert!(
            metrics["crash_count"] >= 1.0,
            "crash:50 over p=4 must schedule at least one crash"
        );
        assert!(
            metrics["wall_clock_ms"] > 0.0,
            "real threads take real time"
        );
        assert_eq!(
            metrics["completed"], grid.seeds as f64,
            "every replicate finished"
        );
    }
}

#[test]
fn repeated_parallel_runs_are_stable() {
    // Same thread count, two runs: catches nondeterminism that the
    // 1-vs-8 comparison could miss if both happened to schedule alike.
    let grid = racy_grid();
    let (a, _) = render(&grid, 4);
    let (b, _) = render(&grid, 4);
    assert_eq!(a, b);
}

#[test]
fn grid_spec_round_trips_through_parse_and_display() {
    let grid = racy_grid();
    let reparsed = Grid::parse(&grid.to_string()).expect("canonical spec parses");
    assert_eq!(reparsed, grid);
    // And the round-tripped grid produces the same cells (hence the same
    // seeds, hence the same results).
    assert_eq!(reparsed.cells(), grid.cells());
}
