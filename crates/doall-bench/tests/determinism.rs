//! The harness's core guarantee: thread count changes wall-clock only,
//! never a byte of output.
//!
//! Cells are seeded from their own parameters (not execution order) and
//! results are slotted by cell index, so `--threads 1` and `--threads 8`
//! must render byte-identical JSON/CSV. These tests run the library path
//! the binaries' `--threads` flag feeds into.

use doall_bench::grid::Grid;
use doall_bench::output::{Record, ResultSet};
use doall_bench::sweep::{run_cells, SweepConfig};

fn render(grid: &Grid, threads: usize) -> (String, String) {
    let cfg = SweepConfig {
        threads,
        ..SweepConfig::default()
    };
    let measurements = run_cells(&grid.cells(), &cfg).expect("grid runs");
    let records: Vec<Record> = measurements
        .into_iter()
        .map(|m| Record {
            experiment: "determinism".to_string(),
            metrics: m.metrics(),
            cell: m.cell,
        })
        .collect();
    let set = ResultSet {
        mode: "custom".to_string(),
        records,
    };
    (set.to_json(), set.to_csv())
}

/// A grid wide enough to make scheduling races visible: randomized
/// algorithms, a seeded adversary, replicates, and more cells than
/// workers so claim order varies between runs.
fn racy_grid() -> Grid {
    Grid::parse(
        "algos=paran1,paran2,da:2,padet advs=stage,random,fixed shapes=4x8,8x8 ds=1,2 seeds=3 \
         seed=11",
    )
    .expect("valid grid")
}

#[test]
fn threads_1_and_8_render_byte_identical_json_and_csv() {
    let grid = racy_grid();
    let (json1, csv1) = render(&grid, 1);
    let (json8, csv8) = render(&grid, 8);
    assert_eq!(json1, json8, "JSON must not depend on thread count");
    assert_eq!(csv1, csv8, "CSV must not depend on thread count");
    // And the output is non-trivial: every cell produced metrics.
    assert_eq!(json1.matches("\"mean_work\"").count(), grid.cells().len());
}

#[test]
fn repeated_parallel_runs_are_stable() {
    // Same thread count, two runs: catches nondeterminism that the
    // 1-vs-8 comparison could miss if both happened to schedule alike.
    let grid = racy_grid();
    let (a, _) = render(&grid, 4);
    let (b, _) = render(&grid, 4);
    assert_eq!(a, b);
}

#[test]
fn grid_spec_round_trips_through_parse_and_display() {
    let grid = racy_grid();
    let reparsed = Grid::parse(&grid.to_string()).expect("canonical spec parses");
    assert_eq!(reparsed, grid);
    // And the round-tripped grid produces the same cells (hence the same
    // seeds, hence the same results).
    assert_eq!(reparsed.cells(), grid.cells());
}
