//! Integration tests for the perf-trajectory subsystem: the
//! `HISTORY.jsonl` ledger round-trips byte-exactly (property-tested over
//! random entries), trend output is byte-identical across `--threads`
//! (the ledger's measured series never renders), and the acceptance
//! scenario holds — a metric creeping +0.4% per entry passes every
//! per-step `compare` at ±1% yet fails the cumulative ±1% band.

use doall_bench::compare::{compare, BaselineSet};
use doall_bench::grid::Grid;
use doall_bench::history::{append_entry, parse_entry, parse_history, History, HistoryEntry};
use doall_bench::resultset::{Record, ResultSet};
use doall_bench::sweep::{run_cells, SweepConfig};
use doall_bench::trend::{analyze, parse_band, TrendConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Canonical adversary spellings plus a passthrough key the grid
/// grammar does not know — both must survive the ledger unchanged.
const ADVERSARIES: &[&str] = &["stage", "unit", "crash:37", "straggler:25:2", "quantum:3"];
const BACKENDS: &[&str] = &["sim", "threads"];
const METRICS: &[&str] = &["completed", "mean_messages", "mean_work", "wall_clock_ms"];

/// A tiny splitmix-style generator so one proptest seed expands into a
/// whole entry (the vendored proptest has no map/collection strategies).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, span: u64) -> u64 {
        self.next() % span.max(1)
    }

    /// A finite, exactly-representable value (dyadic fraction), so
    /// equality through the shortest-round-trip renderer is exact.
    fn value(&mut self) -> f64 {
        let raw = self.below(1 << 20) as f64;
        raw / 64.0
    }
}

fn arbitrary_entry(commit: &str, seed: u64) -> HistoryEntry {
    let mut rng = Lcg(seed);
    let mut records = Vec::new();
    for i in 0..1 + rng.below(5) {
        let adversary = ADVERSARIES[rng.below(ADVERSARIES.len() as u64) as usize];
        let backend = BACKENDS[rng.below(BACKENDS.len() as u64) as usize];
        let mut metrics = String::new();
        for (j, name) in METRICS.iter().enumerate() {
            if j > 0 {
                metrics.push_str(", ");
            }
            metrics.push_str(&format!("\"{name}\": {}", rng.value()));
        }
        records.push(format!(
            "{{\"experiment\": \"e{i:02}\", \"algo\": \"soloall\", \
             \"adversary\": \"{adversary}\", \"backend\": \"{backend}\", \
             \"p\": {}, \"t\": 16, \"d\": 2, \"seeds\": 2, \"metrics\": {{{metrics}}}}}",
            1 + rng.below(64),
        ))
    }
    let text = format!(
        "{{\"schema_version\": 1, \"generator\": \"x\", \"mode\": \"smoke\", \
         \"records\": [{}]}}",
        records.join(", ")
    );
    let set = doall_bench::resultset::parse_result_set(&text).unwrap();
    let cells_per_sec = if rng.below(4) == 0 {
        f64::NAN
    } else {
        rng.value()
    };
    HistoryEntry::from_result_set(commit, "2026-08-08T00:00:00Z", cells_per_sec, &set)
}

proptest! {
    /// The ledger's core invariant: render ∘ parse ≡ id on bytes, so
    /// appending never perturbs what earlier entries say.
    #[test]
    fn ledger_lines_round_trip_byte_exactly(seed in any::<u64>()) {
        let entry = arbitrary_entry("abc123", seed);
        let line = entry.render_line();
        let parsed = parse_entry(&line).unwrap();
        prop_assert_eq!(parsed.render_line(), line, "render ∘ parse drifted");
        prop_assert_eq!(&parsed.cells, &entry.cells);
        // And through a whole multi-entry ledger document.
        let other = arbitrary_entry("def456", seed.wrapping_add(1));
        let text = format!("{}\n{}\n", entry.render_line(), other.render_line());
        let history = parse_history(&text).unwrap();
        let rerendered: String = history
            .entries
            .iter()
            .map(|e| format!("{}\n", e.render_line()))
            .collect();
        prop_assert_eq!(rerendered, text);
    }
}

/// Runs the same tiny backend-tagged grid at a given thread count and
/// folds it into a two-entry in-memory ledger with slightly different
/// runs, exactly like two landed PRs would.
fn ledger_at(threads: usize) -> History {
    let grid = Grid::parse(
        "algos=soloall,paran1 advs=unit,crash:50 backends=sim,threads \
         shapes=4x16 ds=2 seeds=2 seed=7",
    )
    .unwrap();
    let cfg = SweepConfig {
        threads,
        max_ticks: 100_000,
        ..SweepConfig::default()
    };
    let entries = ["aaa", "bbb"]
        .iter()
        .map(|commit| {
            let measurements = run_cells(&grid.cells(), &cfg).unwrap();
            let records: Vec<Record> = measurements
                .into_iter()
                .map(|m| Record {
                    experiment: "trend".to_string(),
                    cell: m.cell.clone(),
                    metrics: m.metrics(),
                })
                .collect();
            let set = BaselineSet::of(&ResultSet {
                mode: "smoke".to_string(),
                records,
            });
            HistoryEntry::from_result_set(commit, "2026-08-08T00:00:00Z", f64::NAN, &set)
        })
        .collect();
    History { entries }
}

#[test]
fn trend_output_is_byte_identical_across_threads() {
    let cfg = TrendConfig {
        last: None,
        bands: vec![
            parse_band("mean_work=±1%").unwrap(),
            parse_band("wall_clock_ms=±1%").unwrap(),
        ],
    };
    let reports: Vec<_> = [1usize, 8]
        .iter()
        .map(|&threads| analyze(&ledger_at(threads), &cfg).unwrap())
        .collect();
    // The ledger *lines* legitimately differ (threads cells re-measure
    // wall clocks), but everything trend renders or gates comes from the
    // deterministic slice, so the reports agree byte for byte.
    assert_eq!(
        reports[0].render_text(),
        reports[1].render_text(),
        "trend text must not depend on --threads"
    );
    assert_eq!(reports[0].render_json(), reports[1].render_json());
    assert!(reports[0].is_clean(), "{}", reports[0].render_text());
    assert!(reports[0].checked > 0, "the sim cells are gated");
}

#[test]
fn file_appends_round_trip_and_reject_duplicates() {
    let path =
        std::env::temp_dir().join(format!("doall_history_trend_{}.jsonl", std::process::id()));
    let path = path.to_str().unwrap();
    let _ = std::fs::remove_file(path);
    let a = arbitrary_entry("aaa", 11);
    let b = arbitrary_entry("bbb", 22);
    append_entry(path, &a).unwrap();
    let history = append_entry(path, &b).unwrap();
    assert_eq!(history.entries.len(), 2);
    let on_disk = std::fs::read_to_string(path).unwrap();
    assert_eq!(
        on_disk,
        format!("{}\n{}\n", a.render_line(), b.render_line()),
        "append is byte-deterministic"
    );
    // A duplicate commit is refused before the file is touched.
    assert!(append_entry(path, &a).is_err());
    assert_eq!(std::fs::read_to_string(path).unwrap(), on_disk);
    std::fs::remove_file(path).unwrap();
}

/// The acceptance scenario from the issue: five ledger entries whose
/// gated metric drifts +0.4% per entry. Every adjacent pair passes
/// `doall compare` at ±1%, but `doall trend --band mean_work=±1%` fails
/// because the cumulative drift is +1.6%.
#[test]
fn creeping_drift_passes_compare_but_fails_the_band() {
    let entry = |commit: &str, work: f64| {
        let mut metrics = BTreeMap::new();
        metrics.insert("mean_work".to_string(), work);
        let text = format!(
            "{{\"schema_version\": 1, \"generator\": \"x\", \"mode\": \"smoke\", \
             \"records\": [{{\"experiment\": \"e01\", \"algo\": \"soloall\", \
             \"adversary\": \"stage\", \"p\": 4, \"t\": 16, \"d\": 2, \"seeds\": 2, \
             \"metrics\": {{\"mean_work\": {work}}}}}]}}"
        );
        let set = doall_bench::resultset::parse_result_set(&text).unwrap();
        HistoryEntry::from_result_set(commit, "2026-08-08T00:00:00Z", f64::NAN, &set)
    };
    let values = [100.0, 100.4, 100.8, 101.2, 101.6];
    let history = History {
        entries: values
            .iter()
            .enumerate()
            .map(|(i, v)| entry(&format!("commit{i}"), *v))
            .collect(),
    };
    // Step by step, the per-PR gate is green all five times.
    for pair in history.entries.windows(2) {
        let step = compare(&pair[0].to_baseline_set(), &pair[1].to_baseline_set(), 0.01);
        assert!(step.is_clean(), "{}", step.render_text());
    }
    // Cumulatively, the trajectory gate is red.
    let report = analyze(
        &history,
        &TrendConfig {
            last: None,
            bands: vec![parse_band("mean_work=±1%").unwrap()],
        },
    )
    .unwrap();
    assert!(!report.is_clean(), "{}", report.render_text());
    assert_eq!(report.violations.len(), 1);
    let v = &report.violations[0];
    assert_eq!((v.first, v.last), (100.0, 101.6));
    assert!(report.render_text().contains("band gate"));
}
