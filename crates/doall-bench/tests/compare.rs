//! The comparator's contract, end to end against the real sweep engine:
//! render → parse → compare(x, x) is all-exact for any grid the harness
//! can run, classification matches hand-built fixtures, and `--compare`
//! output is byte-identical no matter how many threads produced either
//! side (the determinism guarantee extends from results to diffs).

use doall_bench::compare::{compare, parse_result_set, BaselineSet, CellStatus, Comparison};
use doall_bench::grid::Grid;
use doall_bench::output::{Record, ResultSet};
use doall_bench::sweep::{run_cells, SweepConfig};

fn results(grid: &Grid, threads: usize) -> ResultSet {
    let cfg = SweepConfig {
        threads,
        ..SweepConfig::default()
    };
    let measurements = run_cells(&grid.cells(), &cfg).expect("grid runs");
    ResultSet {
        mode: "custom".to_string(),
        records: measurements
            .into_iter()
            .map(|m| Record {
                experiment: "compare-test".to_string(),
                metrics: m.metrics(),
                cell: m.cell,
            })
            .collect(),
    }
}

/// Randomized algorithms, seeded adversaries (including a crash family),
/// replicates, and more cells than workers: the same shape of grid the
/// determinism suite uses to make scheduling races visible.
fn racy_grid() -> Grid {
    Grid::parse(
        "algos=paran1,da:2,padet advs=stage,random,crash:50 shapes=4x8,8x8 ds=1,2 seeds=3 seed=11",
    )
    .expect("valid grid")
}

#[test]
fn round_trip_comparison_is_all_exact() {
    let set = results(&racy_grid(), 4);
    // Render to the wire format, parse it back, compare against itself.
    let parsed = parse_result_set(&set.to_json()).expect("own JSON parses");
    let comparison = compare(&parsed, &parsed, 0.0);
    assert!(comparison.is_clean(), "{}", comparison.render_text());
    assert_eq!(comparison.exact, set.records.len());
    assert!(comparison.cells.is_empty());
    // And the in-memory reduction agrees with the wire round-trip.
    assert_eq!(BaselineSet::of(&set), parsed);
}

#[test]
fn compare_output_is_byte_identical_across_thread_counts() {
    let grid = racy_grid();
    let baseline = BaselineSet::of(&results(&grid, 1));

    // Perturb the baseline so the diff actually has drift rows to render:
    // shift every mean_work and drop one cell, forcing drift + added.
    let mut doctored = baseline.clone();
    let first_key = doctored.cells.keys().next().expect("non-empty").clone();
    doctored.cells.remove(&first_key);
    for metrics in doctored.cells.values_mut() {
        if let Some(v) = metrics.get_mut("mean_work") {
            *v += 1.0;
        }
    }

    let render = |threads: usize| -> (String, String) {
        let current = BaselineSet::of(&results(&grid, threads));
        let comparison = compare(&doctored, &current, 0.0);
        (comparison.render_text(), comparison.render_json())
    };
    let (text1, json1) = render(1);
    let (text8, json8) = render(8);
    assert_eq!(text1, text8, "diff table must not depend on thread count");
    assert_eq!(json1, json8, "diff JSON must not depend on thread count");
    assert!(text1.contains("drift"), "{text1}");
    assert!(text1.contains("added"), "{text1}");
}

#[test]
fn classification_matches_hand_built_fixtures() {
    let record = |algo: &str, d: u64, work: f64, msgs: f64| -> String {
        format!(
            "{{\"experiment\": \"e11\", \"algo\": \"{algo}\", \"adversary\": \"stage\", \
             \"p\": 8, \"t\": 8, \"d\": {d}, \"seeds\": 1, \
             \"metrics\": {{\"mean_work\": {work}, \"mean_messages\": {msgs}}}}}"
        )
    };
    let doc = |records: Vec<String>| -> BaselineSet {
        parse_result_set(&format!(
            "{{\"schema_version\": 1, \"mode\": \"smoke\", \"records\": [{}]}}",
            records.join(", ")
        ))
        .expect("fixture parses")
    };
    let old = doc(vec![
        record("soloall", 1, 64.0, 0.0),
        record("paran1", 1, 64.0, 448.0),
        record("padet", 1, 64.0, 448.0),
    ]);
    let new = doc(vec![
        record("soloall", 1, 64.0, 0.0),   // exact
        record("paran1", 1, 128.0, 448.0), // work doubled: drift
        record("da:3", 1, 120.0, 350.0),   // added
                                           // padet removed
    ]);
    let comparison: Comparison = compare(&old, &new, 0.0);
    assert!(!comparison.is_clean());
    assert_eq!(comparison.exact, 1);
    assert_eq!(comparison.count(CellStatus::Drift), 1);
    assert_eq!(comparison.count(CellStatus::Added), 1);
    assert_eq!(comparison.count(CellStatus::Removed), 1);
    let drift = comparison
        .cells
        .iter()
        .find(|c| c.status == CellStatus::Drift)
        .expect("one drifting cell");
    assert_eq!(drift.key.algo, "paran1");
    assert_eq!(drift.deltas.len(), 1, "messages did not move");
    assert_eq!(drift.deltas[0].name, "mean_work");
    assert_eq!(drift.deltas[0].abs_delta(), Some(64.0));
    assert_eq!(drift.deltas[0].rel_delta(), Some(1.0));
    // A 100% relative tolerance absorbs the doubling; the added/removed
    // cells still fail the comparison.
    let lax = compare(&old, &new, 1.0);
    assert_eq!(lax.count(CellStatus::Drift), 0);
    assert!(!lax.is_clean(), "added/removed cells are never tolerated");
}
