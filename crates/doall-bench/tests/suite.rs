//! End-to-end suite tests: the committed `scenarios/` directory is the
//! paper's experiment suite (e01–e17), its smoke run reproduces the
//! committed `BENCH_smoke_baseline.json`, suite output is byte-identical
//! across worker counts, shard sizes, and directory-listing order, and
//! the `examples/lb_stage.scn` walkthrough scenario runs clean.

use doall_bench::compare::{compare, parse_result_set, BaselineSet};
use doall_bench::scenarios_dir;
use doall_bench::suite::{load_dir, load_file, run_scenario, run_suite, SuiteConfig};
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    scenarios_dir()
        .parent()
        .expect("scenarios/ sits in the repo root")
        .to_path_buf()
}

fn smoke_cfg() -> SuiteConfig {
    SuiteConfig {
        smoke: true,
        ..SuiteConfig::default()
    }
}

/// The committed suite holds exactly the seventeen paper experiments,
/// in sorted-path (= registry) order.
#[test]
fn committed_suite_loads_seventeen_experiments() {
    let scenarios = load_dir(&scenarios_dir()).expect("committed suite loads");
    let ids: Vec<&str> = scenarios.iter().map(|s| s.id.as_str()).collect();
    let expected: Vec<String> = (1..=17).map(|i| format!("e{i:02}")).collect();
    assert_eq!(ids, expected);
}

/// The acceptance gate of the registry-to-loader refactor: running the
/// committed suite in smoke mode reproduces `BENCH_smoke_baseline.json`
/// — byte-exactly for every `sim` cell, and clean under the tolerance-0
/// comparator overall (`threads` cells carry OS-scheduling-dependent
/// counts, so the comparator gates their presence, not their values).
#[test]
fn committed_suite_reproduces_the_smoke_baseline() {
    let scenarios = load_dir(&scenarios_dir()).unwrap();
    let report = run_suite(&scenarios, &smoke_cfg()).unwrap();
    assert!(
        report.failures().next().is_none(),
        "committed assertions must hold: {:?}",
        report.failures().collect::<Vec<_>>()
    );
    let baseline_path = repo_root().join("BENCH_smoke_baseline.json");
    let baseline_text = std::fs::read_to_string(&baseline_path).unwrap();

    // Comparator gate: 197 cells, tolerance 0, no drift in any metric
    // the schema calls deterministic.
    let baseline = parse_result_set(&baseline_text).unwrap();
    let current = BaselineSet::of(&report.results);
    let comparison = compare(&baseline, &current, 0.0);
    assert!(comparison.is_clean(), "{}", comparison.render_text());
    assert_eq!(comparison.exact, 197);

    // Byte gate: every line not carrying a threads-backend record is
    // byte-identical to the committed baseline.
    let ours = report.results.to_json();
    let keep = |line: &&str| !line.contains("\"backend\": \"threads\"");
    let ours: Vec<&str> = ours.lines().filter(keep).collect();
    let theirs: Vec<&str> = baseline_text.lines().filter(keep).collect();
    assert_eq!(ours, theirs, "sim records must be byte-exact");
}

/// Determinism contract: the merged result set is byte-identical across
/// worker counts and shard sizes (run on a cheap three-scenario slice of
/// the committed suite so the matrix stays fast in debug builds).
#[test]
fn suite_output_is_byte_identical_across_threads_and_sharding() {
    let scenarios: Vec<_> = load_dir(&scenarios_dir())
        .unwrap()
        .into_iter()
        .filter(|s| ["e01", "e05", "e12"].contains(&s.id.as_str()))
        .collect();
    assert_eq!(scenarios.len(), 3);
    let mut renderings = Vec::new();
    for threads in [Some(1), Some(8)] {
        for shard_size in [Some(1), None] {
            let cfg = SuiteConfig {
                smoke: true,
                threads,
                shard_size,
                max_ticks: None,
            };
            let report = run_suite(&scenarios, &cfg).unwrap();
            assert!(report.is_clean());
            renderings.push(report.results.to_json());
        }
    }
    for other in &renderings[1..] {
        assert_eq!(&renderings[0], other);
    }
}

/// Directory-listing order must not leak into results: the same files
/// written in different orders (and discovered from scratch) produce
/// byte-identical suite output.
#[test]
fn suite_output_is_independent_of_directory_listing_order() {
    let base = std::env::temp_dir().join(format!("doall_suite_order_{}", std::process::id()));
    let texts: Vec<(String, String)> = ["alpha", "beta", "gamma"]
        .iter()
        .map(|id| {
            (
                format!("{id}.scn"),
                format!(
                    "id = {id}\ngrid = algos=soloall advs=unit shapes=2x4 ds=1 seeds=1 \
                     seed=0\nassert work >= t\n"
                ),
            )
        })
        .collect();
    let mut renderings = Vec::new();
    for (round, order) in [[0, 1, 2], [2, 0, 1]].iter().enumerate() {
        let dir = base.join(round.to_string());
        std::fs::create_dir_all(&dir).unwrap();
        for &i in order {
            let (name, text) = &texts[i];
            std::fs::write(dir.join(name), text).unwrap();
        }
        let scenarios = load_dir(&dir).unwrap();
        let report = run_suite(&scenarios, &SuiteConfig::default()).unwrap();
        renderings.push(report.results.to_json());
    }
    assert_eq!(renderings[0], renderings[1]);
    std::fs::remove_dir_all(&base).unwrap();
}

/// The walkthrough scenario outside the committed suite: the Theorem
/// 3.1 lower-bound adversary with a pinned stage knob. At t = 12 the
/// computed stage equals the pinned one, so `lb` and `lb:2` must force
/// identical work — and every ratio assertion in the file holds.
#[test]
fn example_lb_stage_scenario_runs_clean() {
    let path = repo_root().join("examples").join("lb_stage.scn");
    let scn = load_file(&path).expect("example scenario loads");
    assert_eq!(scn.id, "lb-stage");
    let outcome = run_scenario(&scn, &SuiteConfig::default()).unwrap();
    assert_eq!(outcome.cells, 4, "lb,lb:2 × d=2,12");
    assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
    // The stage-knob claim itself: per d, the pinned spelling forces
    // exactly the work of the computed one.
    for d in [2u64, 12] {
        let work_of = |adv: &str| {
            outcome
                .records
                .iter()
                .find(|r| r.cell.adversary.to_string() == adv && r.cell.d == d)
                .and_then(|r| r.metrics.get("mean_work").copied())
                .unwrap_or_else(|| panic!("missing cell {adv} d={d}"))
        };
        assert_eq!(work_of("lb"), work_of("lb:2"), "d={d}");
    }
}

/// Failure reports stay actionable end to end: a violated assertion
/// names the exact cell tuple, and the rendered table carries it.
#[test]
fn suite_failures_name_the_exact_cell_in_the_rendered_table() {
    let dir = std::env::temp_dir().join(format!("doall_suite_fail_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("f.scn"),
        "id = f\ngrid = algos=soloall advs=unit shapes=4x8 ds=2 seeds=1 seed=0\n\
         assert work <= 1\n",
    )
    .unwrap();
    let scenarios = load_dir(&dir).unwrap();
    let report = run_suite(&scenarios, &SuiteConfig::default()).unwrap();
    assert!(!report.is_clean());
    let table = report.render_table();
    for needle in [
        "FAIL f: `assert work <= 1` violated at (",
        "algo=soloall",
        "adversary=unit",
        "backend=sim",
        "p=4",
        "t=8",
        "d=2",
        "seeds=1",
        "seed=0x",
    ] {
        assert!(table.contains(needle), "`{table}` lacks `{needle}`");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
