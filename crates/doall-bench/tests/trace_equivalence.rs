//! Property tests for the PR's two "must not perturb results" claims:
//!
//! 1. **Tracing is an observer.** A run built with `TraceMode::Off`
//!    (the monomorphized trace-free loop) and the same run built with
//!    `TraceMode::Buffered` produce identical [`RunReport`]s, for random
//!    algorithm × adversary × shape draws across both delivery engines
//!    (bus and per-recipient).
//! 2. **Arena recycling is invisible.** `Simulation::run_batch` (one
//!    recycled proc vector + mailbox/bus arena across replicates) is
//!    byte-identical to constructing a fresh `Simulation` per replicate —
//!    and the sweep engine built on it is byte-identical across
//!    `--threads {1, 8}` × `--shard-size {1, auto}`.

use doall_bench::grid::{build_adversary, build_algorithm, AdversarySpec, Grid};
use doall_bench::sweep::{run_cells, SweepConfig};
use doall_core::{Instance, RunReport};
use doall_sim::{Simulation, TraceMode};
use proptest::prelude::*;

/// Algorithm keys that exercise every messaging pattern: broadcast-free,
/// full broadcast, and partial multicast (gossip).
const ALGOS: &[&str] = &[
    "soloall", "oblido", "da:3", "paran1", "paran2", "padet", "gossip:2",
];

/// Adversaries covering both delivery engines: the first four declare
/// `UniformBroadcast` (bus), the rest stay per-recipient (stateful RNG,
/// mailbox-peeking lower-bound constructions, crash/straggler wrappers).
const ADVS: &[&str] = &[
    "unit",
    "fixed",
    "stage",
    "bursty:3",
    "random",
    "lbrand:4",
    "crash:25@burst",
    "straggler:50:2",
];

const MAX_TICKS: u64 = 200_000;

fn run_with(
    algo: &str,
    adv: &str,
    p: usize,
    t: usize,
    d: u64,
    seed: u64,
    trace: TraceMode,
) -> (RunReport, bool) {
    let instance = Instance::new(p, t).expect("valid shape");
    let algorithm = build_algorithm(algo, instance, seed).expect("valid algo key");
    let spec = AdversarySpec::parse(adv).expect("valid adversary key");
    let adversary = build_adversary(&spec, p, t, d, seed, MAX_TICKS);
    let (report, trace_out) = Simulation::builder(instance)
        .procs(algorithm.spawn(instance))
        .adversary(adversary)
        .max_ticks(MAX_TICKS)
        .trace(trace)
        .build()
        .run_traced();
    (report, trace_out.is_some())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Claim 1: `TraceMode::Off` and `TraceMode::Buffered` agree on every
    /// field of the report, whatever the algorithm, adversary, shape, and
    /// seed.
    #[test]
    fn trace_off_and_buffered_reports_identical(
        algo_idx in 0..ALGOS.len(),
        adv_idx in 0..ADVS.len(),
        p in 2usize..=12,
        t_mult in 1usize..=6,
        d in 1u64..=6,
        seed in 0u64..1_000,
    ) {
        let algo = ALGOS[algo_idx];
        let adv = ADVS[adv_idx];
        let t = p * t_mult;
        let (off, had_trace_off) = run_with(algo, adv, p, t, d, seed, TraceMode::Off);
        let (buffered, had_trace_buf) =
            run_with(algo, adv, p, t, d, seed, TraceMode::Buffered(1 << 20));
        prop_assert!(!had_trace_off);
        prop_assert!(had_trace_buf);
        prop_assert_eq!(off, buffered, "tracing perturbed {}/{}", algo, adv);
    }

    /// Claim 2a: the recycled-arena `run_batch` equals per-replicate
    /// construction, report for report.
    #[test]
    fn run_batch_equals_fresh_simulations(
        algo_idx in 0..ALGOS.len(),
        adv_idx in 0..ADVS.len(),
        p in 2usize..=10,
        d in 1u64..=4,
        runs in 1u64..=5,
        seed_base in 0u64..1_000,
    ) {
        let algo = ALGOS[algo_idx];
        let adv = ADVS[adv_idx];
        let t = p * 4;
        let instance = Instance::new(p, t).expect("valid shape");
        let spec = AdversarySpec::parse(adv).expect("valid adversary key");

        let batched = Simulation::run_batch(
            instance,
            runs,
            MAX_TICKS,
            |k, procs| {
                procs.extend(
                    build_algorithm(algo, instance, seed_base + k)
                        .expect("valid algo key")
                        .spawn(instance),
                );
            },
            |k| build_adversary(&spec, p, t, d, seed_base + k, MAX_TICKS),
        );
        let fresh: Vec<RunReport> = (0..runs)
            .map(|k| {
                Simulation::builder(instance)
                    .procs(
                        build_algorithm(algo, instance, seed_base + k)
                            .expect("valid algo key")
                            .spawn(instance),
                    )
                    .adversary(build_adversary(&spec, p, t, d, seed_base + k, MAX_TICKS))
                    .max_ticks(MAX_TICKS)
                    .build()
                    .run()
            })
            .collect();
        prop_assert_eq!(batched, fresh, "arena leaked state in {}/{}", algo, adv);
    }

    /// Claim 2b: the sweep engine on top of `run_batch` is byte-identical
    /// across `--threads {1, 8}` × `--shard-size {1, auto}`.
    #[test]
    fn sweep_identical_across_threads_and_shards(
        algo_idx in 0..ALGOS.len(),
        adv_idx in 0..ADVS.len(),
        d in 1u64..=4,
        seed in 0u64..1_000,
    ) {
        let algo = ALGOS[algo_idx];
        let adv = ADVS[adv_idx];
        let grid = Grid::parse(&format!(
            "algos={algo} advs={adv} shapes=6x24 ds={d} seeds=6 seed={seed}"
        ))
        .expect("valid grid");
        let cells = grid.cells();
        let mut results = Vec::new();
        for threads in [1usize, 8] {
            for shard_size in [Some(1), None] {
                let cfg = SweepConfig {
                    threads,
                    shard_size,
                    max_ticks: MAX_TICKS,
                    ..SweepConfig::default()
                };
                results.push(run_cells(&cells, &cfg).expect("sweep runs"));
            }
        }
        for other in &results[1..] {
            prop_assert_eq!(&results[0], other, "thread/shard config changed results");
        }
    }
}
