//! Criterion bench: exact and estimated contention evaluation — the cost
//! of certifying a schedule list.

use criterion::{criterion_group, criterion_main, Criterion};
use doall_perms::{contention_exact, d_contention_estimate, Schedules};
use std::hint::black_box;

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("contention_exact");
    group.sample_size(20);
    for q in [4usize, 5, 6] {
        let sched = Schedules::random(q, q, 0);
        group.bench_function(format!("q={q}"), |bench| {
            bench.iter(|| black_box(contention_exact(sched.as_slice())));
        });
    }
    group.finish();
}

fn bench_estimate(c: &mut Criterion) {
    let mut group = c.benchmark_group("d_contention_estimate");
    group.sample_size(10);
    for (p, n) in [(8usize, 64usize), (16, 256)] {
        let sched = Schedules::random(p, n, 0);
        group.bench_function(format!("p={p}/n={n}/d=8"), |bench| {
            bench.iter(|| black_box(d_contention_estimate(sched.as_slice(), 8, 16, 0)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact, bench_estimate);
criterion_main!(benches);
