//! Criterion bench: permutation primitives (generation, composition,
//! inversion, lrm, d-lrm) — the hot paths of the contention machinery.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use doall_perms::{d_lrm, lrm, Permutation};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_perm_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("perm_ops");
    for n in [64usize, 1024] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Permutation::random(n, &mut rng);
        let b = Permutation::random(n, &mut rng);

        group.bench_function(format!("random/n={n}"), |bench| {
            let mut rng = StdRng::seed_from_u64(2);
            bench.iter(|| black_box(Permutation::random(n, &mut rng)));
        });
        group.bench_function(format!("compose/n={n}"), |bench| {
            bench.iter(|| black_box(a.compose(&b)));
        });
        group.bench_function(format!("inverse/n={n}"), |bench| {
            bench.iter(|| black_box(a.inverse()));
        });
        group.bench_function(format!("lrm/n={n}"), |bench| {
            bench.iter(|| black_box(lrm(&a)));
        });
        group.bench_function(format!("d_lrm/n={n}/d=8"), |bench| {
            bench.iter(|| black_box(d_lrm(&a, 8)));
        });
    }
    group.finish();
}

fn bench_enumeration(c: &mut Criterion) {
    c.bench_function("enumerate_s6", |bench| {
        bench.iter_batched(
            || (),
            |()| black_box(Permutation::all(6).count()),
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_perm_ops, bench_enumeration);
criterion_main!(benches);
