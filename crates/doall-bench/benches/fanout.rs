//! Criterion bench: `Message` fan-out — the cost of addressing one
//! broadcast payload to `p − 1` recipients, at the processor counts the
//! scaled grids sweep (p ∈ {64, 4096, 65536}).
//!
//! Three variants bracket the design space:
//!
//! * `shared`  — the production path: one `Arc<BitSet>` payload, one
//!   refcount bump per recipient.
//! * `cloned`  — the pre-redesign behaviour, kept as the yardstick: a
//!   deep `BitSet` clone per recipient (p allocations per broadcast).
//! * `bus`     — the `BroadcastBus` engine: one push for the whole
//!   broadcast, then every recipient pulls its delivery.

use criterion::{criterion_group, criterion_main, Criterion};
use doall_core::{BitSet, Message, ProcId};
use doall_sim::BroadcastBus;
use std::hint::black_box;
use std::sync::Arc;

/// A half-full payload of `t = p` bits, as a DA-style knowledge set.
fn payload(t: usize) -> BitSet {
    let mut s = BitSet::new(t);
    let mut i = 0;
    while i < t {
        s.insert(i);
        i += 2;
    }
    s
}

fn bench_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("fanout");
    group.sample_size(20);

    for &p in &[64usize, 4096, 65536] {
        let bits = Arc::new(payload(p));
        let from = ProcId::new(0);

        group.bench_function(format!("shared/p={p}"), |b| {
            let mut out: Vec<Message> = Vec::with_capacity(p);
            b.iter(|| {
                out.clear();
                for _ in 1..p {
                    out.push(Message::new(from, Arc::clone(&bits)));
                }
                black_box(out.len())
            });
        });

        group.bench_function(format!("cloned/p={p}"), |b| {
            let mut out: Vec<Message> = Vec::with_capacity(p);
            b.iter(|| {
                out.clear();
                for _ in 1..p {
                    out.push(Message::new(from, BitSet::clone(&bits)));
                }
                black_box(out.len())
            });
        });

        group.bench_function(format!("bus/p={p}"), |b| {
            let mut bus = BroadcastBus::new(p);
            let mut inbox: Vec<Message> = Vec::new();
            b.iter(|| {
                bus.reset(p);
                bus.push(from, 1, &bits);
                let mut delivered = 0usize;
                for pid in 1..p {
                    inbox.clear();
                    bus.deliver_into(pid, 1, &mut inbox);
                    delivered += inbox.len();
                }
                black_box(delivered)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fanout);
criterion_main!(benches);
