//! Criterion bench: the `BitSet` primitives on the broadcast hot path —
//! `union_with` (the receive-side merge), `insert` (task completion), and
//! `count` — in isolation, at the word counts the grids actually sweep.
//!
//! `union_with` is benchmarked in three regimes because its fast path is
//! input-dependent: merging fresh knowledge (disjoint halves), re-merging
//! an already-absorbed payload (the no-gain case the diff-first word loop
//! skips without writing), and self-union of full sets.

use criterion::{criterion_group, criterion_main, Criterion};
use doall_core::BitSet;
use std::hint::black_box;

/// A bitset over `t` bits with every `stride`-th bit set, offset by `phase`.
fn striped(t: usize, stride: usize, phase: usize) -> BitSet {
    let mut s = BitSet::new(t);
    let mut i = phase;
    while i < t {
        s.insert(i);
        i += stride;
    }
    s
}

fn bench_bitset(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitset");
    group.sample_size(30);

    for &t in &[64usize, 4096, 65536] {
        let evens = striped(t, 2, 0);
        let odds = striped(t, 2, 1);
        let full = {
            let mut s = BitSet::new(t);
            for i in 0..t {
                s.insert(i);
            }
            s
        };

        group.bench_function(format!("union_with/disjoint/t={t}"), |b| {
            b.iter(|| {
                let mut dst = evens.clone();
                black_box(dst.union_with(black_box(&odds)))
            });
        });
        group.bench_function(format!("union_with/no_gain/t={t}"), |b| {
            let mut dst = full.clone();
            b.iter(|| black_box(dst.union_with(black_box(&evens))));
        });
        group.bench_function(format!("union_with/self/t={t}"), |b| {
            let mut dst = full.clone();
            let src = full.clone();
            b.iter(|| black_box(dst.union_with(black_box(&src))));
        });
        group.bench_function(format!("insert/sweep/t={t}"), |b| {
            b.iter(|| {
                let mut s = BitSet::new(t);
                for i in 0..t {
                    s.insert(black_box(i));
                }
                black_box(s.count())
            });
        });
        group.bench_function(format!("count/t={t}"), |b| {
            b.iter(|| black_box(evens.count()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bitset);
criterion_main!(benches);
