//! Criterion bench on the sweep harness *itself* (not the algorithms):
//! cells/second through the engine, the scaling curve vs `--threads`,
//! and intra-cell replicate sharding on a single big cell — so engine
//! regressions (scheduling overhead, merge cost, a serialization point)
//! show up in the same place as algorithm regressions.
//!
//! Results are deterministic across thread counts and shard sizes, so
//! the different configurations measure the same computation; only the
//! orchestration differs.

use criterion::{criterion_group, criterion_main, Criterion};
use doall_bench::grid::Grid;
use doall_bench::sweep::{run_cells, run_cells_with_stats, SweepConfig};
use std::hint::black_box;

/// Many small cells: cross-cell parallelism (the PR 2 regime).
fn many_cells() -> Grid {
    Grid::parse("algos=paran1,paran2,padet advs=stage,random shapes=8x32 ds=1,4 seeds=4 seed=2")
        .expect("valid grid")
}

/// One big cell: intra-cell replicate sharding is the only parallelism.
fn one_big_cell() -> Grid {
    Grid::parse("algos=paran1 advs=stage shapes=64x256 ds=4 seeds=16 seed=2").expect("valid grid")
}

fn bench_harness(c: &mut Criterion) {
    let mut group = c.benchmark_group("harness");
    group.sample_size(10);

    // Cells/second baseline and the scaling curve vs --threads.
    let cells = many_cells().cells();
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(
            format!("cells/{}cells/threads={threads}", cells.len()),
            |b| {
                b.iter(|| {
                    black_box(
                        run_cells(
                            &cells,
                            &SweepConfig {
                                threads,
                                ..SweepConfig::default()
                            },
                        )
                        .expect("grid runs"),
                    )
                });
            },
        );
    }

    // The tentpole case: a single huge cell, whole-cell vs auto-sharded.
    // Before intra-cell sharding, threads>1 could not help here at all.
    let big = one_big_cell().cells();
    for (label, threads, shard_size) in [
        ("whole-cell/threads=1", 1usize, Some(u64::MAX)),
        ("auto-shard/threads=4", 4, None),
        ("shard=1/threads=4", 4, Some(1)),
    ] {
        group.bench_function(format!("one-cell/seeds=16/{label}"), |b| {
            b.iter(|| {
                let (out, stats) = run_cells_with_stats(
                    &big,
                    &SweepConfig {
                        threads,
                        shard_size,
                        ..SweepConfig::default()
                    },
                )
                .expect("grid runs");
                black_box((out, stats))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_harness);
criterion_main!(benches);
