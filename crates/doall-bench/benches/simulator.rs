//! Criterion bench: simulator throughput — full executions per second for
//! the shapes the experiments sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use doall_algorithms::{Algorithm, PaRan2, SoloAll};
use doall_core::Instance;
use doall_sim::adversary::{FixedDelay, StageAligned};
use doall_sim::Simulation;
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);

    let instance = Instance::new(32, 128).unwrap();
    group.bench_function("solo_all/p=32/t=128", |bench| {
        bench.iter(|| {
            let algo = SoloAll::new();
            black_box(
                Simulation::builder(instance)
                    .procs(algo.spawn(instance))
                    .adversary(Box::new(FixedDelay::new(8)))
                    .build()
                    .run(),
            )
        });
    });
    group.bench_function("pa_ran2/p=32/t=128/d=8", |bench| {
        bench.iter(|| {
            let algo = PaRan2::new(1);
            black_box(
                Simulation::builder(instance)
                    .procs(algo.spawn(instance))
                    .adversary(Box::new(StageAligned::new(8)))
                    .build()
                    .run(),
            )
        });
    });
    let big = Instance::new(128, 512).unwrap();
    group.bench_function("pa_ran2/p=128/t=512/d=32", |bench| {
        bench.iter(|| {
            let algo = PaRan2::new(1);
            black_box(
                Simulation::builder(big)
                    .procs(algo.spawn(big))
                    .adversary(Box::new(StageAligned::new(32)))
                    .build()
                    .run(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
