//! Criterion bench: full PA-family executions, including the lower-bound
//! adversary (whose per-stage dry-runs dominate its cost).

use criterion::{criterion_group, criterion_main, Criterion};
use doall_algorithms::{Algorithm, PaDet, PaRan1};
use doall_core::Instance;
use doall_sim::adversary::{LowerBoundAdversary, StageAligned};
use doall_sim::Simulation;
use std::hint::black_box;

fn bench_pa(c: &mut Criterion) {
    let mut group = c.benchmark_group("pa_run");
    group.sample_size(20);
    let instance = Instance::new(64, 256).unwrap();
    let padet = PaDet::random_for(instance, 0);
    for d in [1u64, 16, 64] {
        group.bench_function(format!("padet/p=64/t=256/d={d}"), |bench| {
            bench.iter(|| {
                black_box(
                    Simulation::builder(instance)
                        .procs(padet.spawn(instance))
                        .adversary(Box::new(StageAligned::new(d)))
                        .build()
                        .run(),
                )
            });
        });
    }
    group.bench_function("paran1/p=64/t=256/d=16", |bench| {
        bench.iter(|| {
            let algo = PaRan1::new(3);
            black_box(
                Simulation::builder(instance)
                    .procs(algo.spawn(instance))
                    .adversary(Box::new(StageAligned::new(16)))
                    .build()
                    .run(),
            )
        });
    });
    group.bench_function("padet_vs_lb_adversary/p=64/t=256/d=16", |bench| {
        bench.iter(|| {
            black_box(
                Simulation::builder(instance)
                    .procs(padet.spawn(instance))
                    .adversary(Box::new(LowerBoundAdversary::new(16, 256)))
                    .build()
                    .run(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pa);
criterion_main!(benches);
