//! Criterion bench: full DA(q) executions — the tree algorithm's cost
//! across branching factors and delay regimes.

use criterion::{criterion_group, criterion_main, Criterion};
use doall_algorithms::{Algorithm, Da};
use doall_core::Instance;
use doall_sim::adversary::StageAligned;
use doall_sim::Simulation;
use std::hint::black_box;

fn bench_da(c: &mut Criterion) {
    let mut group = c.benchmark_group("da_run");
    group.sample_size(20);
    for q in [2usize, 3] {
        let da = Da::with_default_schedules(q, 0);
        let instance = Instance::new(27, 729).unwrap();
        for d in [1u64, 27] {
            group.bench_function(format!("q={q}/p=27/t=729/d={d}"), |bench| {
                bench.iter(|| {
                    black_box(
                        Simulation::builder(instance)
                            .procs(da.spawn(instance))
                            .adversary(Box::new(StageAligned::new(d)))
                            .build()
                            .run(),
                    )
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_da);
criterion_main!(benches);
