//! End-to-end: every algorithm completes against every adversary, with
//! sane work accounting.

use doall_algorithms::{Algorithm, Da, PaDet, PaRan1, PaRan2, SoloAll};
use doall_core::Instance;
use doall_sim::adversary::{
    CrashSchedule, FixedDelay, LowerBoundAdversary, RandomDelay, RandomSubset,
    RandomizedLbAdversary, RoundRobin, StageAligned, UnitDelay,
};
use doall_sim::{Adversary, Simulation};

fn algorithms(instance: Instance, seed: u64) -> Vec<Box<dyn Algorithm>> {
    vec![
        Box::new(SoloAll::new()),
        Box::new(Da::with_default_schedules(2, seed)),
        Box::new(Da::with_default_schedules(3, seed)),
        Box::new(PaRan1::new(seed)),
        Box::new(PaRan2::new(seed)),
        Box::new(PaDet::random_for(instance, seed)),
    ]
}

fn adversaries(d: u64, t: usize, seed: u64) -> Vec<Box<dyn Adversary>> {
    vec![
        Box::new(UnitDelay),
        Box::new(FixedDelay::new(d)),
        Box::new(RandomDelay::new(d, seed)),
        Box::new(StageAligned::new(d)),
        Box::new(RoundRobin::new(Box::new(FixedDelay::new(d)), 2)),
        Box::new(RandomSubset::new(Box::new(FixedDelay::new(d)), 0.6, seed)),
        Box::new(LowerBoundAdversary::new(d, t)),
        Box::new(RandomizedLbAdversary::new(d, t, seed)),
    ]
}

#[test]
fn completion_matrix() {
    // Every algorithm × every adversary, two instance shapes (p = t and
    // t > p), completes with all tasks performed.
    for (p, t) in [(6, 6), (4, 19)] {
        let instance = Instance::new(p, t).unwrap();
        for algo in algorithms(instance, 11) {
            let n_adv = adversaries(5, t, 7).len();
            for k in 0..n_adv {
                let adversary = adversaries(5, t, 7).remove(k);
                let name = format!("{} vs {} (p={p}, t={t})", algo.name(), adversary.name());
                let report = Simulation::builder(instance)
                    .procs(algo.spawn(instance))
                    .adversary(adversary)
                    .max_ticks(500_000)
                    .build()
                    .run();
                assert!(report.completed, "{name}: did not complete: {report}");
                assert!(report.work >= t as u64, "{name}: work below t");
                assert!(report.sigma.is_some(), "{name}: no σ");
            }
        }
    }
}

#[test]
fn solo_all_work_is_exactly_pt() {
    for (p, t) in [(1, 10), (4, 10), (8, 64)] {
        let instance = Instance::new(p, t).unwrap();
        let report = Simulation::builder(instance)
            .procs(SoloAll::new().spawn(instance))
            .adversary(Box::new(UnitDelay))
            .build()
            .run();
        assert!(report.completed);
        assert_eq!(
            report.work,
            (p * t) as u64,
            "oblivious work is the quadratic ceiling"
        );
        assert_eq!(report.messages, 0);
    }
}

#[test]
fn cooperation_beats_oblivious_at_small_d() {
    // p = t = 32, d = 1: every cooperative algorithm must beat p·t work.
    let p = 32;
    let t = 32;
    let instance = Instance::new(p, t).unwrap();
    let quadratic = (p * t) as u64;
    for algo in algorithms(instance, 3) {
        if algo.name() == "SoloAll" {
            continue;
        }
        let report = Simulation::builder(instance)
            .procs(algo.spawn(instance))
            .adversary(Box::new(UnitDelay))
            .build()
            .run();
        assert!(report.completed);
        assert!(
            report.work < quadratic,
            "{}: W = {} not subquadratic (p·t = {quadratic})",
            algo.name(),
            report.work
        );
    }
}

#[test]
fn work_grows_with_delay() {
    // For each cooperative algorithm, work under d = 64 is at least work
    // under d = 1 (they may tie on tiny instances, hence ≥).
    let p = 16;
    let t = 16;
    let instance = Instance::new(p, t).unwrap();
    for algo in algorithms(instance, 5) {
        if algo.name() == "SoloAll" {
            continue;
        }
        let fast = Simulation::builder(instance)
            .procs(algo.spawn(instance))
            .adversary(Box::new(FixedDelay::new(1)))
            .build()
            .run();
        let slow = Simulation::builder(instance)
            .procs(algo.spawn(instance))
            .adversary(Box::new(FixedDelay::new(64)))
            .build()
            .run();
        assert!(fast.completed && slow.completed);
        assert!(
            slow.work >= fast.work,
            "{}: delay should not reduce work ({} vs {})",
            algo.name(),
            slow.work,
            fast.work
        );
    }
}

#[test]
fn crash_tolerant_with_single_survivor() {
    // Crash all but one processor at t/4 ticks; the survivor must finish
    // alone.
    let p = 8;
    let t = 40;
    let instance = Instance::new(p, t).unwrap();
    for algo in algorithms(instance, 13) {
        let adversary = CrashSchedule::all_but_one(Box::new(FixedDelay::new(3)), p, 2, 10);
        let report = Simulation::builder(instance)
            .procs(algo.spawn(instance))
            .adversary(Box::new(adversary))
            .max_ticks(500_000)
            .build()
            .run();
        assert!(
            report.completed,
            "{}: survivor failed to finish: {report}",
            algo.name()
        );
    }
}

#[test]
fn deterministic_reports_are_reproducible() {
    let p = 8;
    let t = 24;
    let instance = Instance::new(p, t).unwrap();
    for algo in algorithms(instance, 21) {
        let a = Simulation::builder(instance)
            .procs(algo.spawn(instance))
            .adversary(Box::new(StageAligned::new(4)))
            .build()
            .run();
        let b = Simulation::builder(instance)
            .procs(algo.spawn(instance))
            .adversary(Box::new(StageAligned::new(4)))
            .build()
            .run();
        assert_eq!(a, b, "{}: simulation must be deterministic", algo.name());
    }
}

#[test]
fn da_message_complexity_at_most_p_per_step() {
    let p = 9;
    let t = 27;
    let instance = Instance::new(p, t).unwrap();
    let da = Da::with_default_schedules(3, 0);
    let report = Simulation::builder(instance)
        .procs(da.spawn(instance))
        .adversary(Box::new(FixedDelay::new(4)))
        .build()
        .run();
    assert!(report.completed);
    assert!(
        report.messages <= report.work * (p as u64 - 1),
        "Theorem 5.6: M ≤ (p−1)·W"
    );
}

#[test]
fn lower_bound_adversary_inflates_deterministic_work() {
    // DA under the Thm 3.1 adversary with large d performs substantially
    // more work than under the benign unit-delay adversary.
    let p = 9;
    let t = 81;
    let instance = Instance::new(p, t).unwrap();
    let da = Da::with_default_schedules(3, 0);
    let benign = Simulation::builder(instance)
        .procs(da.spawn(instance))
        .adversary(Box::new(UnitDelay))
        .build()
        .run();
    let attacked = Simulation::builder(instance)
        .procs(da.spawn(instance))
        .adversary(Box::new(LowerBoundAdversary::new(16, t)))
        .max_ticks(500_000)
        .build()
        .run();
    assert!(benign.completed && attacked.completed);
    assert!(
        attacked.work > benign.work,
        "adversary must hurt: {} vs {}",
        attacked.work,
        benign.work
    );
}
