//! Property-based tests of the algorithm state machines, independent of
//! the simulator.

use doall_algorithms::{Algorithm, Da, ObliDo, PaDet, PaGossip, PaRan1, PaRan2, SoloAll};
use doall_core::{DoAllProcess, Instance, Message, ProcId};
use doall_perms::Schedules;
use proptest::prelude::*;

/// Drives a single processor with no incoming messages until it knows
/// everything; returns the performed task indices in order.
fn run_solo(mut proc_: Box<dyn DoAllProcess>, limit: usize) -> Vec<usize> {
    let mut performed = Vec::new();
    let mut steps = 0;
    while !proc_.knows_all_done() {
        if let Some(z) = proc_.step(&[]).performed {
            performed.push(z.index());
        }
        steps += 1;
        assert!(steps < limit, "state machine diverged");
    }
    performed
}

fn algorithm(which: u8, instance: Instance, seed: u64) -> Box<dyn Algorithm> {
    match which % 7 {
        0 => Box::new(SoloAll::new()),
        1 => Box::new(Da::with_default_schedules(2 + (seed % 4) as usize, seed)),
        2 => Box::new(Da::with_default_schedules(3, seed)),
        3 => Box::new(PaRan1::new(seed)),
        4 => Box::new(PaRan2::new(seed)),
        5 => Box::new(PaGossip::new(seed, 1 + (seed % 3) as usize)),
        _ => Box::new(PaDet::random_for(instance, seed)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Solo completeness: any algorithm's processor 0, receiving no
    /// messages, performs every task at least once and each at most a
    /// bounded number of times (exactly once for everything except
    /// SoloAll's full sweep semantics, but we only assert coverage +
    /// sanity here).
    #[test]
    fn any_processor_alone_covers_all_tasks(
        p in 1usize..12,
        t in 1usize..50,
        which in 0u8..7,
        seed in any::<u64>(),
    ) {
        let instance = Instance::new(p, t).unwrap();
        let algo = algorithm(which, instance, seed);
        let procs = algo.spawn(instance);
        prop_assert_eq!(procs.len(), p);
        let performed = run_solo(procs.into_iter().next().unwrap(), 100 * (t + 16) * 4);
        let mut seen = vec![false; t];
        for z in &performed {
            seen[*z] = true;
        }
        prop_assert!(seen.iter().all(|&b| b), "{}: missed tasks", algo.name());
        // No algorithm performs a task more than a small constant number
        // of times when running alone.
        let mut counts = vec![0usize; t];
        for z in &performed {
            counts[*z] += 1;
        }
        prop_assert!(
            counts.iter().all(|&c| c <= 2),
            "{}: solo run repeated a task more than twice",
            algo.name()
        );
    }

    /// Spawn determinism: spawning twice and driving identically produces
    /// identical behaviour (the bedrock of reproducible experiments).
    #[test]
    fn spawn_is_deterministic(
        p in 1usize..8,
        t in 1usize..30,
        which in 0u8..7,
        seed in any::<u64>(),
    ) {
        let instance = Instance::new(p, t).unwrap();
        let algo = algorithm(which, instance, seed);
        let run = || {
            algo.spawn(instance)
                .into_iter()
                .map(|proc_| run_solo(proc_, 100 * (t + 16) * 4))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// Knowledge transfer: feeding processor B the final broadcast of a
    /// completed processor A makes B finish without performing anything
    /// (for the knowledge-sharing algorithms).
    #[test]
    fn final_broadcast_transfers_completion(
        p in 2usize..8,
        t in 1usize..30,
        which in 1u8..7, // skip SoloAll, which never broadcasts
        seed in any::<u64>(),
    ) {
        let instance = Instance::new(p, t).unwrap();
        let algo = algorithm(which, instance, seed);
        let mut procs = algo.spawn(instance);
        // Drive processor 0 to completion, capturing its last broadcast.
        let mut last = None;
        let mut steps = 0;
        while !procs[0].knows_all_done() {
            if let Some(bits) = procs[0].step(&[]).broadcast {
                last = Some(bits);
            }
            steps += 1;
            prop_assert!(steps < 100 * (t + 16) * 4, "diverged");
        }
        let Some(bits) = last else {
            // t = 1 single job can complete without broadcasting only if
            // the algorithm broadcasts on completion — all of ours do.
            return Err(TestCaseError::fail("no broadcast observed"));
        };
        let msg = Message::new(ProcId::new(0), bits);
        // Processor 1 learns everything in at most a couple of steps (the
        // merge happens at the start of its next step; DA may take one
        // extra internal step to pop its stack).
        let target = &mut procs[1];
        let mut informed = false;
        let mut extra_work = 0;
        for i in 0..3 {
            let inbox = if i == 0 { std::slice::from_ref(&msg) } else { &[] };
            let outcome = target.step(inbox);
            if outcome.performed.is_some() {
                extra_work += 1;
            }
            if target.knows_all_done() {
                informed = true;
                break;
            }
        }
        prop_assert!(informed, "{}: did not learn from final broadcast", algo.name());
        // Learning from a completed peer may at most finish one in-flight
        // task, never a whole extra sweep.
        prop_assert!(extra_work <= 1);
    }

    /// ObliDo performs exactly n·p job executions whatever the schedules.
    #[test]
    fn oblido_total_work_is_np(n in 1usize..12, seed in any::<u64>(), extra_p in 0usize..4) {
        let p = n + extra_p;
        let instance = Instance::new(p, n).unwrap();
        let algo = ObliDo::new(Schedules::random(n, n, seed));
        let mut total = 0usize;
        for proc_ in algo.spawn(instance) {
            total += run_solo(proc_, 100 * (n + 16)).len();
        }
        prop_assert_eq!(total, n * p);
    }
}
