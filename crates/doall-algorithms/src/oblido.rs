//! Algorithm **ObliDo** (Fig. 2 of the paper): oblivious scheduling by a
//! list of permutations.
//!
//! `n` processors perform `n` jobs; processor `u` performs the jobs in the
//! order given by schedule `π_u ∈ Σ`, never communicating and never
//! checking ground truth. The total number of job executions is exactly
//! `n²`, but the number of *primary* executions — performances of a job not
//! yet performed by anyone — is at most `Cont(Σ)` (Lemma 4.2). The
//! experiment harness replays simulation traces to count primary
//! executions and verify the lemma.
//!
//! ObliDo is an analysis device (the recursion of Lemma 5.3 reduces DA's
//! behaviour at each tree level to ObliDo over q subtree-jobs), but it runs
//! fine as an algorithm; with `p ≠ n` processors, processor `pid` uses
//! schedule `π_{pid mod n}` — the paper's "each 'processor' may be modeling
//! a group of processors following the same sequence of activities".

use crate::Algorithm;
use doall_core::{DoAllProcess, Instance, JobCursor, JobMap, Message, ProcId, StepOutcome};
use doall_perms::Schedules;
use std::sync::Arc;

/// Factory for ObliDo parameterized by a schedule list `Σ`.
#[derive(Debug, Clone)]
pub struct ObliDo {
    schedules: Arc<Schedules>,
}

impl ObliDo {
    /// Creates the factory. The schedule list's size must equal the number
    /// of *jobs* of any instance it is spawned for (`n = min(p, t)`);
    /// spawn panics otherwise.
    #[must_use]
    pub fn new(schedules: Schedules) -> Self {
        Self {
            schedules: Arc::new(schedules),
        }
    }
}

impl Algorithm for ObliDo {
    fn name(&self) -> String {
        format!("ObliDo(n={})", self.schedules.n())
    }

    fn spawn(&self, instance: Instance) -> Vec<Box<dyn DoAllProcess>> {
        let n = instance.units();
        assert_eq!(
            self.schedules.n(),
            n,
            "schedule list is over [{}] but the instance has {} jobs",
            self.schedules.n(),
            n
        );
        let job_map = instance.job_map();
        (0..instance.processors())
            .map(|i| {
                Box::new(ObliDoProcess {
                    pid: ProcId::new(i),
                    schedules: Arc::clone(&self.schedules),
                    schedule_index: i % self.schedules.len(),
                    job_map,
                    position: 0,
                    cursor: None,
                }) as Box<dyn DoAllProcess>
            })
            .collect()
    }
}

/// Per-processor state machine of [`ObliDo`].
#[derive(Debug, Clone)]
pub struct ObliDoProcess {
    pid: ProcId,
    schedules: Arc<Schedules>,
    schedule_index: usize,
    job_map: JobMap,
    /// Next position in the schedule.
    position: usize,
    /// Cursor over the constituent tasks of the job in progress.
    cursor: Option<JobCursor>,
}

impl DoAllProcess for ObliDoProcess {
    fn pid(&self) -> ProcId {
        self.pid
    }

    fn step(&mut self, _inbox: &[Message]) -> StepOutcome {
        // Obliviousness: the inbox is ignored (nothing is ever sent).
        let n = self.job_map.job_count();
        loop {
            if let Some(cursor) = self.cursor.as_mut() {
                if let Some(task) = cursor.next_task() {
                    if cursor.is_finished() {
                        self.cursor = None;
                    }
                    return StepOutcome::perform(task);
                }
                self.cursor = None;
            }
            if self.position >= n {
                return StepOutcome::internal();
            }
            let schedule = self.schedules.get(self.schedule_index);
            let job = schedule.apply(self.position);
            self.position += 1;
            self.cursor = Some(self.job_map.cursor(doall_core::JobId::new(job)));
        }
    }

    fn knows_all_done(&self) -> bool {
        self.position >= self.job_map.job_count() && self.cursor.is_none()
    }

    fn clone_box(&self) -> Box<dyn DoAllProcess> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doall_perms::Permutation;

    fn schedules_n(n: usize, seed: u64) -> Schedules {
        Schedules::random(n, n, seed)
    }

    #[test]
    fn performs_jobs_in_schedule_order() {
        let sched = Schedules::from_perms(vec![
            Permutation::from_image(vec![2, 0, 1]).unwrap(),
            Permutation::identity(3),
            Permutation::reversal(3),
        ])
        .unwrap();
        let inst = Instance::new(3, 3).unwrap();
        let mut procs = ObliDo::new(sched).spawn(inst);
        let order: Vec<usize> = (0..3)
            .map(|_| procs[0].step(&[]).performed.unwrap().index())
            .collect();
        assert_eq!(order, vec![2, 0, 1]);
        assert!(procs[0].knows_all_done());
    }

    #[test]
    fn total_executions_are_n_squared() {
        let n = 5;
        let inst = Instance::new(n, n).unwrap();
        let mut procs = ObliDo::new(schedules_n(n, 3)).spawn(inst);
        let mut executions = 0;
        for proc_ in &mut procs {
            while !proc_.knows_all_done() {
                if proc_.step(&[]).performed.is_some() {
                    executions += 1;
                }
            }
        }
        assert_eq!(executions, n * n);
    }

    #[test]
    fn job_clustering_expands_to_tasks() {
        // 2 processors, 6 tasks → 2 jobs of 3 tasks.
        let inst = Instance::new(2, 6).unwrap();
        let mut procs = ObliDo::new(schedules_n(2, 0)).spawn(inst);
        let mut performed = Vec::new();
        while !procs[0].knows_all_done() {
            if let Some(z) = procs[0].step(&[]).performed {
                performed.push(z.index());
            }
        }
        performed.sort_unstable();
        assert_eq!(performed, vec![0, 1, 2, 3, 4, 5], "all tasks, each once");
    }

    #[test]
    fn more_processors_than_schedules_reuse() {
        let inst = Instance::new(4, 2).unwrap(); // n = 2 jobs
        let procs = ObliDo::new(schedules_n(2, 1)).spawn(inst);
        assert_eq!(procs.len(), 4);
    }

    #[test]
    #[should_panic(expected = "schedule list is over")]
    fn wrong_schedule_size_panics() {
        let inst = Instance::new(3, 3).unwrap();
        let _ = ObliDo::new(schedules_n(2, 0)).spawn(inst);
    }
}
