//! The Do-All algorithms of Kowalski & Shvartsman, plus baselines.
//!
//! | Algorithm | Paper | Work against a d-adversary |
//! |-----------|-------|-----------------------------|
//! | [`SoloAll`] | §1 (oblivious baseline) | `Θ(p·t)` — no communication |
//! | [`ObliDo`]  | Fig. 2, §4.1 | `n²` job executions; ≤ `Cont(Σ)` *primary* (Lemma 4.2) |
//! | [`Da`] — DA(q) | Fig. 3, §5 | `O(t·p^ε + p·min{t,d}·⌈t/d⌉^ε)` (Thms 5.4/5.5) |
//! | [`PaRan1`] | Fig. 4, §6 | `E[W] = O(t log p + p·d·log(2 + t/d))` (Cor 6.4) |
//! | [`PaRan2`] | Fig. 4, §6 | same expected work, far fewer random bits |
//! | [`PaDet`]  | Fig. 4, §6 | same bound deterministically with a low `(d)`-contention list (Cor 6.5) |
//! | [`PaGossip`] | §7 extension | per-completion multicast to `fanout` random peers — trades work for messages |
//!
//! All algorithms are implemented as cloneable state machines
//! ([`doall_core::DoAllProcess`]) so they run unchanged on the
//! discrete-event simulator (`doall-sim`) and on real threads
//! (`doall-runtime`). Every algorithm tolerates arbitrary crashes with at
//! least one survivor and assumes nothing about the delay bound `d`.
//!
//! The [`Algorithm`] trait is the factory interface used by the experiment
//! harness to spawn one state machine per processor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod da;
mod factory;
mod oblido;
mod pa;
mod trivial;

pub use da::{Da, DaProcess, TreeShape};
pub use factory::Algorithm;
pub use oblido::{ObliDo, ObliDoProcess};
pub use pa::{PaDet, PaGossip, PaProcess, PaRan1, PaRan2};
pub use trivial::{SoloAll, SoloAllProcess};
