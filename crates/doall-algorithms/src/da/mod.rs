//! Algorithm family **DA(q)** (Fig. 3, Section 5): the deterministic
//! message-passing re-interpretation of Anderson & Woll's shared-memory
//! certified Write-All algorithm.
//!
//! Each processor holds a *replica* of a q-ary boolean progress tree whose
//! leaves are the jobs (tasks, or `⌈t/p⌉`-task clusters when `t > p`). A
//! processor traverses its replica in post-order looking for work; at an
//! interior node of depth `m` it visits the `q` subtrees in the order given
//! by permutation `π_{x[m]} ∈ Σ`, where `x[m]` is the `m`-th q-ary digit of
//! its pid. Two changes versus the shared-memory original (paper §1.2):
//!
//! 1. instead of a global tree there is a replica per processor;
//! 2. instead of writing to shared memory, a processor **multicasts** its
//!    replica whenever it marks a node done; received replicas are merged
//!    in by bitwise OR (updates are monotone, so replicas never conflict).
//!
//! For any `ε > 0` there is a constant `q` and a schedule list `Σ` with
//! `Cont(Σ) ≤ 3q·H_q` (Lemma 4.1) such that the work is
//! `O(t·p^ε + p·min{t, d}·⌈t/d⌉^ε)` against any d-adversary
//! (Theorems 5.4/5.5), with message complexity `O(p · W)` (Theorem 5.6).

mod machine;
mod tree;

pub use machine::DaProcess;
pub use tree::TreeShape;

use crate::Algorithm;
use doall_core::{CoreError, DoAllProcess, Instance};
use doall_perms::{search, Schedules};
use std::sync::Arc;

/// Factory for DA(q).
///
/// ```
/// use doall_algorithms::{Algorithm, Da};
/// use doall_core::Instance;
///
/// // DA(3) with a certified low-contention schedule list.
/// let da = Da::with_default_schedules(3, 0);
/// assert_eq!(da.name(), "DA(3)");
///
/// let procs = da.spawn(Instance::new(9, 81).unwrap());
/// assert_eq!(procs.len(), 9);
/// ```
#[derive(Debug, Clone)]
pub struct Da {
    q: usize,
    schedules: Arc<Schedules>,
}

impl Da {
    /// Creates DA(q) from an explicit schedule list `Σ` of `q`
    /// permutations of `[q]`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `q < 2`, or the list is
    /// not `q` permutations of `[q]`.
    pub fn new(q: usize, schedules: Schedules) -> Result<Self, CoreError> {
        if q < 2 {
            return Err(CoreError::invalid("q", "DA(q) requires q ≥ 2"));
        }
        if schedules.n() != q || schedules.len() != q {
            return Err(CoreError::invalid(
                "schedules",
                format!(
                    "DA({q}) needs exactly {q} permutations of [{q}], got {} of [{}]",
                    schedules.len(),
                    schedules.n()
                ),
            ));
        }
        Ok(Self {
            q,
            schedules: Arc::new(schedules),
        })
    }

    /// Creates DA(q) with a certified low-contention schedule list found by
    /// [`search::low_contention_list`] (exhaustively optimal for `q ≤ 3`,
    /// hill-climbed with exact certification for `q ≤ 8`).
    ///
    /// # Panics
    ///
    /// Panics if `q < 2`.
    #[must_use]
    pub fn with_default_schedules(q: usize, seed: u64) -> Self {
        let (schedules, _) = search::low_contention_list(q, seed);
        // lint:allow(H001) — invariant: the search returns q permutations of [q] by construction
        Self::new(q, schedules).expect("searched list has the right shape")
    }

    /// The branching factor `q`.
    #[must_use]
    pub fn q(&self) -> usize {
        self.q
    }

    /// The schedule list `Σ`.
    #[must_use]
    pub fn schedules(&self) -> &Schedules {
        &self.schedules
    }
}

impl Algorithm for Da {
    fn name(&self) -> String {
        format!("DA({})", self.q)
    }

    fn spawn(&self, instance: Instance) -> Vec<Box<dyn DoAllProcess>> {
        let shared = Arc::new(machine::DaShared::new(
            instance,
            self.q,
            Arc::clone(&self.schedules),
        ));
        (0..instance.processors())
            .map(|pid| Box::new(DaProcess::new(pid, Arc::clone(&shared))) as Box<dyn DoAllProcess>)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        let s3 = Schedules::random(3, 3, 0);
        assert!(Da::new(1, Schedules::random(1, 1, 0)).is_err());
        assert!(Da::new(2, s3.clone()).is_err());
        assert!(Da::new(3, s3).is_ok());
    }

    #[test]
    fn default_schedules_are_valid() {
        for q in [2, 3, 4] {
            let da = Da::with_default_schedules(q, 0);
            assert_eq!(da.q(), q);
            assert_eq!(da.schedules().len(), q);
            assert_eq!(da.schedules().n(), q);
            assert_eq!(da.name(), format!("DA({q})"));
        }
    }

    #[test]
    fn spawn_counts() {
        let da = Da::with_default_schedules(2, 0);
        let procs = da.spawn(Instance::new(5, 9).unwrap());
        assert_eq!(procs.len(), 5);
    }
}
