//! The DA(q) per-processor state machine: post-order traversal of the
//! replicated progress tree (Fig. 3, lines 10–14 and 40–54), restructured
//! as an explicit-stack machine taking one unit of work per step.
//!
//! Step granularity (one work unit each, per the paper's accounting —
//! "constant overhead … per each call to Dowork" plus one unit per task):
//!
//! * *descend*: at an interior node, scan the remaining children in
//!   schedule order (pruning marked ones is free — those are reads of the
//!   local replica) and enter the first unmarked child;
//! * *perform*: at an unmarked leaf, perform the next constituent task of
//!   its job; performing the job's last task also marks the leaf and
//!   multicasts the replica (the paper's lines 45 + 51–52);
//! * *retire*: at a node whose children are all marked, mark it, multicast
//!   the replica, and return to the parent (lines 50–52).
//!
//! The message-processing "thread" (lines 20–26) is folded into the start
//! of every step: the inbox is merged into the replica by bitwise OR,
//! which is free within the step, matching the paper's simplifying
//! assumption that the two threads run at the same speed.

use super::tree::TreeShape;
use doall_core::{
    BitSet, DoAllProcess, Instance, JobCursor, JobId, JobMap, Message, ProcId, StepOutcome,
};
use doall_perms::Schedules;
use std::sync::Arc;

/// Configuration shared (immutably) by all DA processors of one run.
#[derive(Debug)]
pub(super) struct DaShared {
    pub(super) shape: TreeShape,
    pub(super) schedules: Arc<Schedules>,
    pub(super) job_map: JobMap,
    pub(super) initial_bits: BitSet,
}

impl DaShared {
    pub(super) fn new(instance: Instance, q: usize, schedules: Arc<Schedules>) -> Self {
        let n = instance.units();
        let shape = TreeShape::new(q, n);
        Self {
            shape,
            schedules,
            job_map: instance.job_map(),
            initial_bits: shape.initial_bits(),
        }
    }
}

/// A traversal frame: the machine is inside `node` (at `depth`) and has
/// already issued visits to the children at schedule positions
/// `< child_pos`.
#[derive(Debug, Clone)]
struct Frame {
    node: usize,
    depth: usize,
    child_pos: usize,
}

/// Per-processor state machine of [`super::Da`].
#[derive(Debug, Clone)]
pub struct DaProcess {
    pid: ProcId,
    shared: Arc<DaShared>,
    /// This processor's replica of the progress tree.
    tree: BitSet,
    /// q-ary digits of the pid, least significant first; digit `m` selects
    /// the schedule at depth `m`.
    digits: Vec<usize>,
    stack: Vec<Frame>,
    /// Cursor over the constituent tasks of the leaf job in progress.
    cursor: Option<JobCursor>,
}

impl DaProcess {
    pub(super) fn new(pid: usize, shared: Arc<DaShared>) -> Self {
        let q = shared.shape.q();
        let h = shared.shape.height();
        let mut digits = Vec::with_capacity(h);
        let mut rest = pid;
        for _ in 0..h {
            digits.push(rest % q);
            rest /= q;
        }
        let tree = shared.initial_bits.clone();
        Self {
            pid: ProcId::new(pid),
            shared,
            tree,
            digits,
            stack: vec![Frame {
                node: 0,
                depth: 0,
                child_pos: 0,
            }],
            cursor: None,
        }
    }

    /// This processor's replica (used by tests and the examples to inspect
    /// knowledge).
    #[must_use]
    pub fn tree_bits(&self) -> &BitSet {
        &self.tree
    }

    /// Marks `node`, pops the current frame, and produces the multicast of
    /// the updated replica.
    fn retire(&mut self, node: usize) -> BitSet {
        self.tree.insert(node);
        self.stack.pop();
        self.tree.clone()
    }
}

impl DoAllProcess for DaProcess {
    fn pid(&self) -> ProcId {
        self.pid
    }

    fn step(&mut self, inbox: &[Message]) -> StepOutcome {
        // Message-processing thread: merge replicas (free within the step).
        for msg in inbox {
            self.tree.union_with(msg.bits());
        }

        // A job in progress continues regardless of merges: the job is the
        // atomic scheduling unit (its remaining cost is ≤ ⌈t/p⌉ steps,
        // absorbed in the analysis constants).
        if let Some(cursor) = self.cursor.as_mut() {
            let task = cursor
                .next_task()
                // lint:allow(H001) — invariant: `self.cursor` is set to None the step it exhausts
                .expect("cursor is cleared when exhausted");
            if cursor.is_finished() {
                self.cursor = None;
                // lint:allow(H001) — invariant: a live cursor implies a leaf frame on the stack
                let leaf = self.stack.last().expect("leaf frame present").node;
                let bits = self.retire(leaf);
                return StepOutcome::perform_and_broadcast(task, bits);
            }
            return StepOutcome::perform(task);
        }

        let Some(frame) = self.stack.last_mut() else {
            // Traversal finished (root marked): idle no-op steps.
            return StepOutcome::internal();
        };
        let node = frame.node;
        let depth = frame.depth;

        // Pruned meanwhile by a merged replica? Return to the parent.
        if self.tree.contains(node) {
            self.stack.pop();
            return StepOutcome::internal();
        }

        let shape = self.shared.shape;
        if shape.is_leaf(node) {
            // Real leaf (dummies are pre-marked, handled above).
            let job = shape
                .job_of_leaf(node)
                // lint:allow(H001) — invariant: dummy leaves are pre-marked, so this leaf has a job
                .expect("unmarked leaves correspond to real jobs");
            let mut cursor = self.shared.job_map.cursor(JobId::new(job));
            // lint:allow(H001) — invariant: JobMap never creates empty jobs
            let task = cursor.next_task().expect("jobs are nonempty");
            if cursor.is_finished() {
                // Single-task job: perform + mark + multicast in one step.
                let bits = self.retire(node);
                return StepOutcome::perform_and_broadcast(task, bits);
            }
            self.cursor = Some(cursor);
            return StepOutcome::perform(task);
        }

        // Interior node: scan remaining children in schedule order; the
        // schedule is chosen by the pid digit at this depth (processors
        // whose pids exceed q^h reuse digit 0, i.e. only the h least
        // significant digits matter, as in the paper).
        let digit = self.digits.get(depth).copied().unwrap_or(0);
        let schedule = self.shared.schedules.get(digit);
        let q = shape.q();
        let mut pos = frame.child_pos;
        while pos < q {
            let child = shape.child(node, schedule.apply(pos));
            pos += 1;
            if !self.tree.contains(child) {
                frame.child_pos = pos;
                self.stack.push(Frame {
                    node: child,
                    depth: depth + 1,
                    child_pos: 0,
                });
                return StepOutcome::internal();
            }
        }
        // All children marked: retire this node and multicast.
        let bits = self.retire(node);
        StepOutcome::broadcast(bits)
    }

    fn knows_all_done(&self) -> bool {
        self.tree.contains(0)
    }

    fn clone_box(&self) -> Box<dyn DoAllProcess> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Algorithm, Da};

    fn solo_run(q: usize, p: usize, t: usize) -> (u64, Vec<usize>) {
        // Drive processor 0 alone (no messages) to completion; return
        // (steps, tasks performed in order).
        let da = Da::with_default_schedules(q, 0);
        let mut procs = da.spawn(Instance::new(p, t).unwrap());
        let mut steps = 0u64;
        let mut performed = Vec::new();
        while !procs[0].knows_all_done() {
            let o = procs[0].step(&[]);
            steps += 1;
            if let Some(z) = o.performed {
                performed.push(z.index());
            }
            assert!(steps < 100_000, "diverged");
        }
        (steps, performed)
    }

    #[test]
    fn solo_processor_performs_all_tasks_exactly_once() {
        for (q, t) in [(2, 8), (2, 5), (3, 9), (3, 10), (4, 16), (5, 7)] {
            let (_, mut performed) = solo_run(q, 1, t);
            performed.sort_unstable();
            let expect: Vec<usize> = (0..t).collect();
            assert_eq!(performed, expect, "q={q} t={t}");
        }
    }

    #[test]
    fn solo_work_is_linear_in_tree_size() {
        // One processor: ≤ 2 steps per node + 1 per task.
        let (steps, _) = solo_run(3, 1, 27);
        let shape = TreeShape::new(3, 27);
        assert!(steps <= 2 * shape.node_count() as u64 + 27);
    }

    #[test]
    fn job_clustering_when_t_exceeds_p() {
        // p = 2, t = 10 → 2 jobs of 5 tasks.
        let (_, performed) = solo_run(2, 2, 10);
        assert_eq!(performed.len(), 10);
        let mut sorted = performed.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        // Tasks within a job are consecutive.
        assert!(performed
            .chunks(5)
            .all(|c| c.windows(2).all(|w| w[1] == w[0] + 1)));
    }

    #[test]
    fn merging_replica_prunes_subtrees() {
        let da = Da::with_default_schedules(2, 0);
        let inst = Instance::new(2, 4).unwrap();
        let mut procs = da.spawn(inst);
        // Run proc 1 to completion, capture its final replica.
        let mut final_bits = None;
        while !procs[1].knows_all_done() {
            if let Some(b) = procs[1].step(&[]).broadcast {
                final_bits = Some(b);
            }
        }
        let final_bits = final_bits.expect("completion broadcasts the full tree");
        assert!(final_bits.contains(0), "root marked in final broadcast");
        // Deliver to proc 0: one step merges it and prunes everything.
        let msg = Message::new(ProcId::new(1), final_bits);
        let o = procs[0].step(std::slice::from_ref(&msg));
        assert!(procs[0].knows_all_done(), "merge alone conveys completion");
        assert_eq!(o.performed, None, "no redundant work after full merge");
    }

    #[test]
    fn distinct_pids_traverse_in_distinct_orders() {
        // q = 3, t = 9, three processors with distinct digit-0 values
        // should start on different subtrees.
        let da = Da::with_default_schedules(3, 0);
        let inst = Instance::new(3, 9).unwrap();
        let mut procs = da.spawn(inst);
        let mut firsts = Vec::new();
        for proc_ in &mut procs {
            loop {
                let o = proc_.step(&[]);
                if let Some(z) = o.performed {
                    firsts.push(z.index() / 3); // subtree index
                    break;
                }
            }
        }
        let mut uniq = firsts.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(
            uniq.len() >= 2,
            "low-contention schedules spread processors across subtrees: {firsts:?}"
        );
    }

    #[test]
    fn broadcasts_accompany_every_node_retirement() {
        let da = Da::with_default_schedules(2, 0);
        let inst = Instance::new(4, 4).unwrap();
        let mut procs = da.spawn(inst);
        let mut broadcasts = 0;
        while !procs[0].knows_all_done() {
            if procs[0].step(&[]).broadcast.is_some() {
                broadcasts += 1;
            }
        }
        // 7 nodes (4 leaves + 2 interior + root) each retire exactly once.
        assert_eq!(broadcasts, 7);
    }

    #[test]
    fn large_branching_factors_and_deep_trees() {
        // Deep trees with certified schedules (cheap q)…
        for (q, t) in [(2, 64), (2, 100), (3, 100)] {
            let (_, mut performed) = solo_run(q, 1, t);
            performed.sort_unstable();
            assert_eq!(performed, (0..t).collect::<Vec<_>>(), "q={q} t={t}");
        }
        // …and large branching factors with uncertified random schedules
        // (exact certification for q = 7, 8 enumerates up to 8! references
        // per evaluation — fine in release, too slow for a debug test).
        for (q, t) in [(7usize, 49usize), (8, 64)] {
            let da = Da::new(q, doall_perms::Schedules::random(q, q, 0)).unwrap();
            let mut procs = da.spawn(Instance::new(1, t).unwrap());
            let mut performed = Vec::new();
            let mut steps = 0u64;
            while !procs[0].knows_all_done() {
                if let Some(z) = procs[0].step(&[]).performed {
                    performed.push(z.index());
                }
                steps += 1;
                assert!(steps < 100_000, "diverged");
            }
            performed.sort_unstable();
            assert_eq!(performed, (0..t).collect::<Vec<_>>(), "q={q} t={t}");
        }
    }

    #[test]
    fn pids_beyond_tree_capacity_reuse_low_digits() {
        // p = 32 processors on a q = 2, t = 8 tree (h = 3): pids ≥ 8 share
        // digit patterns with pid mod 8 and must behave identically solo.
        let da = Da::with_default_schedules(2, 0);
        let inst = Instance::new(32, 8).unwrap();
        let run_one = |pid: usize| {
            let mut procs = da.spawn(inst);
            let proc_ = &mut procs[pid];
            let mut order = Vec::new();
            while !proc_.knows_all_done() {
                if let Some(z) = proc_.step(&[]).performed {
                    order.push(z.index());
                }
            }
            order
        };
        assert_eq!(run_one(3), run_one(3 + 8));
        assert_eq!(run_one(5), run_one(5 + 16));
    }

    #[test]
    fn idle_after_completion() {
        let da = Da::with_default_schedules(2, 0);
        let mut procs = da.spawn(Instance::new(1, 2).unwrap());
        while !procs[0].knows_all_done() {
            procs[0].step(&[]);
        }
        assert_eq!(procs[0].step(&[]), StepOutcome::internal());
        assert!(procs[0].knows_all_done());
    }

    #[test]
    fn clone_box_forks_state() {
        let da = Da::with_default_schedules(2, 0);
        let mut procs = da.spawn(Instance::new(1, 4).unwrap());
        let mut clone = procs[0].clone_box();
        procs[0].step(&[]);
        procs[0].step(&[]);
        // The clone is behind, not aliased.
        assert!(!clone.knows_all_done());
        let o = clone.step(&[]);
        let _ = o;
    }
}
