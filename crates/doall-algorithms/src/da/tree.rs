//! Geometry of the q-ary progress tree (Section 5.1.1).
//!
//! The tree has height `h` with `q^h` leaves, stored in a flat boolean
//! array: node 0 is the root and the children of node `x` are
//! `q·x + 1, …, q·x + q`. The number of nodes is
//! `l = (q^{h+1} − 1)/(q − 1)`, the leaves are the last `q^h` nodes, and
//! leaf number `j` (zero-based) is node `l − q^h + j`.
//!
//! When the number of jobs `n` is not a power of `q`, the tree is sized for
//! the next power and the trailing `q^h − n` *dummy* leaves are pre-marked
//! done, together with any interior node whose whole subtree is dummy —
//! the paper's padding device, without wasting steps on dummy work.

use doall_core::BitSet;

/// Shape of a q-ary progress tree for `n` real jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeShape {
    q: usize,
    h: usize,
    node_count: usize,
    leaf_base: usize,
    jobs: usize,
}

impl TreeShape {
    /// Computes the shape for `n ≥ 1` real jobs with branching factor
    /// `q ≥ 2`: height `h = ⌈log_q n⌉`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `q < 2`.
    #[must_use]
    pub fn new(q: usize, n: usize) -> Self {
        assert!(q >= 2, "branching factor must be at least 2");
        assert!(n >= 1, "need at least one job");
        let mut h = 0usize;
        let mut leaves = 1usize;
        while leaves < n {
            leaves *= q;
            h += 1;
        }
        // l = 1 + q + … + q^h = (q^{h+1} − 1)/(q − 1).
        let node_count = (leaves * q - 1) / (q - 1);
        Self {
            q,
            h,
            node_count,
            leaf_base: node_count - leaves,
            jobs: n,
        }
    }

    /// Branching factor `q`.
    #[must_use]
    pub fn q(&self) -> usize {
        self.q
    }

    /// Height `h` (leaves are at depth `h`; `h = 0` means the root is the
    /// only — leaf — node).
    #[must_use]
    pub fn height(&self) -> usize {
        self.h
    }

    /// Total number of nodes `l`.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of leaves `q^h` (including dummies).
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.node_count - self.leaf_base
    }

    /// Number of real jobs `n`.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Whether `node` is a leaf.
    #[must_use]
    pub fn is_leaf(&self, node: usize) -> bool {
        node >= self.leaf_base
    }

    /// The `c`-th child (zero-based) of interior node `node`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `node` is a leaf or `c ≥ q`.
    #[must_use]
    pub fn child(&self, node: usize, c: usize) -> usize {
        debug_assert!(!self.is_leaf(node), "leaves have no children");
        debug_assert!(c < self.q, "child index out of range");
        self.q * node + 1 + c
    }

    /// The node of leaf number `j` (zero-based, `j < q^h`).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `j` is out of range.
    #[must_use]
    pub fn leaf_node(&self, j: usize) -> usize {
        debug_assert!(j < self.leaf_count(), "leaf index out of range");
        self.leaf_base + j
    }

    /// The job of leaf node `node`, or `None` for a dummy leaf.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `node` is not a leaf.
    #[must_use]
    pub fn job_of_leaf(&self, node: usize) -> Option<usize> {
        debug_assert!(self.is_leaf(node), "not a leaf");
        let j = node - self.leaf_base;
        (j < self.jobs).then_some(j)
    }

    /// The initial replica: all zeros except dummy leaves and interior
    /// nodes whose entire subtree is dummy.
    #[must_use]
    pub fn initial_bits(&self) -> BitSet {
        let mut bits = BitSet::new(self.node_count);
        for j in self.jobs..self.leaf_count() {
            bits.insert(self.leaf_node(j));
        }
        // Bottom-up: an interior node is pre-done iff all children are.
        for node in (0..self.leaf_base).rev() {
            if (0..self.q).all(|c| bits.contains(self.child(node, c))) {
                bits.insert(node);
            }
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_power_shape() {
        let s = TreeShape::new(3, 9);
        assert_eq!(s.height(), 2);
        assert_eq!(s.leaf_count(), 9);
        assert_eq!(s.node_count(), 13); // 1 + 3 + 9
        assert_eq!(s.leaf_base, 4);
        assert!(s.initial_bits().count() == 0, "no dummies");
    }

    #[test]
    fn single_job_is_root_leaf() {
        let s = TreeShape::new(2, 1);
        assert_eq!(s.height(), 0);
        assert_eq!(s.node_count(), 1);
        assert!(s.is_leaf(0));
        assert_eq!(s.job_of_leaf(0), Some(0));
    }

    #[test]
    fn children_layout() {
        let s = TreeShape::new(2, 4);
        // Nodes: 0; 1,2; 3,4,5,6 (leaves).
        assert_eq!(s.node_count(), 7);
        assert_eq!(s.child(0, 0), 1);
        assert_eq!(s.child(0, 1), 2);
        assert_eq!(s.child(1, 0), 3);
        assert_eq!(s.child(2, 1), 6);
        assert!(s.is_leaf(3) && s.is_leaf(6));
        assert!(!s.is_leaf(2));
        assert_eq!(s.leaf_node(0), 3);
        assert_eq!(s.job_of_leaf(5), Some(2));
    }

    #[test]
    fn padding_marks_dummies_and_dummy_subtrees() {
        // q = 2, n = 5 → 8 leaves, 3 dummies (leaves 5, 6, 7).
        let s = TreeShape::new(2, 5);
        assert_eq!(s.leaf_count(), 8);
        assert_eq!(s.node_count(), 15);
        let bits = s.initial_bits();
        for j in 0..5 {
            assert!(!bits.contains(s.leaf_node(j)), "real leaf {j} unmarked");
        }
        for j in 5..8 {
            assert!(bits.contains(s.leaf_node(j)), "dummy leaf {j} marked");
        }
        // Leaves 6 and 7 are children of node 6 (children 13, 14): all
        // dummy, so node 6 is pre-marked; node 5 (children 11, 12) has the
        // real leaf 11, so it is not.
        assert!(bits.contains(6));
        assert!(!bits.contains(5));
        assert!(!bits.contains(0), "root never pre-marked with real jobs");
    }

    #[test]
    fn job_of_dummy_leaf_is_none() {
        let s = TreeShape::new(3, 2); // 3 leaves, 1 dummy
        assert_eq!(s.job_of_leaf(s.leaf_node(1)), Some(1));
        assert_eq!(s.job_of_leaf(s.leaf_node(2)), None);
    }

    #[test]
    fn node_count_formula() {
        for q in 2..=5 {
            for n in 1..=30 {
                let s = TreeShape::new(q, n);
                // Sum of geometric series check.
                let mut total = 0usize;
                let mut level = 1usize;
                for _ in 0..=s.height() {
                    total += level;
                    level *= q;
                }
                assert_eq!(s.node_count(), total, "q={q} n={n}");
                assert!(s.leaf_count() >= n);
                assert!(s.height() == 0 || s.leaf_count() / q < n, "minimal height");
            }
        }
    }
}
