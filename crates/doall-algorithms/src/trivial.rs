//! The communication-oblivious baseline: every processor performs every
//! task.
//!
//! "The problem can be solved by a communication-oblivious algorithm where
//! each processor performs all tasks. Such a solution has work
//! `W = Θ(t·p)` and requires no communication" (Section 1). This is the
//! quadratic ceiling every delay-sensitive algorithm is measured against —
//! and the *optimal* strategy once `d = Ω(t)` (Proposition 2.2).

use crate::Algorithm;
use doall_core::{DoAllProcess, Instance, Message, ProcId, StepOutcome, TaskId};

/// Factory for the oblivious each-does-everything baseline.
///
/// Each processor sweeps all `t` tasks in index order rotated by its own
/// pid (`pid · ⌈t/p⌉` positions), sends nothing, and halts when its own
/// sweep is complete. The rotation does not change the worst-case work
/// (`p · t` exactly) but makes the ground-truth completion time `t/p` in
/// failure-free executions, which is the behaviour one would deploy.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoloAll;

impl SoloAll {
    /// Creates the factory.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Algorithm for SoloAll {
    fn name(&self) -> String {
        "SoloAll".to_string()
    }

    fn spawn(&self, instance: Instance) -> Vec<Box<dyn DoAllProcess>> {
        let p = instance.processors();
        let t = instance.tasks();
        let stride = t.div_ceil(p);
        (0..p)
            .map(|i| {
                Box::new(SoloAllProcess {
                    pid: ProcId::new(i),
                    t,
                    offset: (i * stride) % t,
                    done: 0,
                }) as Box<dyn DoAllProcess>
            })
            .collect()
    }
}

/// Per-processor state machine of [`SoloAll`].
#[derive(Debug, Clone)]
pub struct SoloAllProcess {
    pid: ProcId,
    t: usize,
    offset: usize,
    done: usize,
}

impl DoAllProcess for SoloAllProcess {
    fn pid(&self) -> ProcId {
        self.pid
    }

    fn step(&mut self, _inbox: &[Message]) -> StepOutcome {
        if self.done < self.t {
            let z = (self.offset + self.done) % self.t;
            self.done += 1;
            StepOutcome::perform(TaskId::new(z))
        } else {
            StepOutcome::internal()
        }
    }

    fn knows_all_done(&self) -> bool {
        self.done >= self.t
    }

    fn clone_box(&self) -> Box<dyn DoAllProcess> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawns_one_per_processor() {
        let inst = Instance::new(4, 10).unwrap();
        let procs = SoloAll::new().spawn(inst);
        assert_eq!(procs.len(), 4);
        for (i, p) in procs.iter().enumerate() {
            assert_eq!(p.pid(), ProcId::new(i));
        }
    }

    #[test]
    fn each_processor_performs_every_task_once() {
        let inst = Instance::new(3, 7).unwrap();
        let mut procs = SoloAll::new().spawn(inst);
        for proc_ in &mut procs {
            let mut seen = [false; 7];
            for _ in 0..7 {
                assert!(!proc_.knows_all_done());
                let o = proc_.step(&[]);
                let z = o.performed.expect("every step performs");
                assert!(!seen[z.index()], "no repeats");
                seen[z.index()] = true;
                assert!(o.broadcast.is_none(), "oblivious: never communicates");
            }
            assert!(proc_.knows_all_done());
            assert!(seen.iter().all(|&b| b), "full coverage");
            // Extra steps are harmless no-ops.
            assert_eq!(proc_.step(&[]), StepOutcome::internal());
        }
    }

    #[test]
    fn offsets_spread_processors() {
        let inst = Instance::new(2, 10).unwrap();
        let mut procs = SoloAll::new().spawn(inst);
        let first0 = procs[0].step(&[]).performed.unwrap();
        let first1 = procs[1].step(&[]).performed.unwrap();
        assert_eq!(first0, TaskId::new(0));
        assert_eq!(first1, TaskId::new(5), "rotated by ⌈t/p⌉");
    }
}
