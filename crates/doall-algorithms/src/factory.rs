//! The algorithm-factory trait used by the experiment harness.

use doall_core::{DoAllProcess, Instance};

/// A Do-All algorithm, viewed as a factory of per-processor state
/// machines.
///
/// Implementations hold the algorithm's parameters (e.g. DA's branching
/// factor and schedule list); [`spawn`](Self::spawn) materializes the `p`
/// state machines for a concrete instance. Spawning is deterministic:
/// spawning twice yields identical initial states (randomized algorithms
/// derive per-processor RNG seeds from the configured seed), which is what
/// makes simulated executions reproducible.
pub trait Algorithm {
    /// Human-readable name used in experiment tables (e.g. `"DA(3)"`).
    fn name(&self) -> String;

    /// Creates one state machine per processor of `instance`.
    fn spawn(&self, instance: Instance) -> Vec<Box<dyn DoAllProcess>>;
}
