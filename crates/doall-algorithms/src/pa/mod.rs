//! The permutation algorithms **PaRan1**, **PaRan2**, **PaDet** (Fig. 4,
//! Section 6).
//!
//! All three share one skeleton: while a processor has not ascertained
//! that every job is complete, it selects a job from its local list of
//! known-incomplete jobs, performs it (one local step per constituent
//! task), and broadcasts its knowledge; received knowledge prunes the
//! local list. They differ only in `Order`/`Select`:
//!
//! * **PaRan1** — each processor draws a uniformly random local
//!   permutation up front and follows it (`p·min{t,p}` random selections of
//!   `O(log min{t,p})` bits each);
//! * **PaRan2** — no up-front order: each selection is uniform over the
//!   jobs still unknown-complete (at most `E[W]·log t` expected random
//!   bits — the cheaper construction the paper highlights);
//! * **PaDet** — processor `pid` follows the fixed schedule `π_pid` from a
//!   list `Σ`; with a list per Corollary 4.5 the work bound is
//!   deterministic.
//!
//! Work against any d-adversary is at most `(d)-Cont(Σ)` (Lemma 6.1),
//! which with Theorem 4.4's bound gives
//! `E[W] = O(t log p + p·d·log(2 + t/d))` for the randomized versions
//! (Cor 6.4) and the same deterministically for PaDet (Cor 6.5).

use crate::Algorithm;
use doall_core::{
    DoAllProcess, DoneSet, Instance, JobCursor, JobId, JobMap, Message, ProcId, StepOutcome,
};
use doall_perms::{Permutation, Schedules};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Mixes a run seed with a pid into a per-processor RNG seed.
fn per_proc_seed(seed: u64, pid: usize) -> u64 {
    // SplitMix64-style mix; cheap and adequate for experiment seeding.
    let mut z = seed ^ (pid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How the next job is selected — the `Order`/`Select` plug of Fig. 4.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // StdRng is big but Selector lives once per processor
enum Selector {
    /// Follow a fixed permutation of the jobs (PaRan1 and PaDet).
    Schedule {
        order: Arc<Permutation>,
        position: usize,
    },
    /// Pick uniformly at random among jobs not known complete (PaRan2).
    Uniform { rng: StdRng },
}

/// Gossip throttling: on each job completion, send knowledge to `fanout`
/// random peers instead of broadcasting to everyone (the §7 direction of
/// "simultaneously controlling work and message complexity", cf. the
/// gossip-based Do-All of Georgiou–Kowalski–Shvartsman the paper cites).
#[derive(Debug, Clone)]
struct Gossip {
    fanout: usize,
    processors: usize,
    rng: StdRng,
}

impl Gossip {
    /// Picks `fanout` distinct random peers other than `me`.
    fn targets(&mut self, me: ProcId) -> Vec<ProcId> {
        let others = self.processors - 1;
        let k = self.fanout.min(others);
        if k == 0 {
            return Vec::new();
        }
        // Sample k distinct indices from the p−1 peers.
        let picks = rand::seq::index::sample(&mut self.rng, others, k);
        picks
            .into_iter()
            .map(|i| {
                // Skip over our own pid in the 0..p−1 peer numbering.
                ProcId::new(if i >= me.index() { i + 1 } else { i })
            })
            .collect()
    }
}

/// Per-processor state machine shared by the PA algorithms.
#[derive(Debug, Clone)]
pub struct PaProcess {
    pid: ProcId,
    job_map: JobMap,
    /// Knowledge: jobs known complete (self-performed or learned).
    done: DoneSet,
    selector: Selector,
    /// Job in progress and its task cursor.
    current: Option<(JobId, JobCursor)>,
    /// `Some` = gossip to a random subset instead of broadcasting.
    gossip: Option<Gossip>,
}

impl PaProcess {
    fn new(pid: usize, instance: Instance, selector: Selector) -> Self {
        let job_map = instance.job_map();
        Self {
            pid: ProcId::new(pid),
            done: DoneSet::new(job_map.job_count()),
            job_map,
            selector,
            current: None,
            gossip: None,
        }
    }

    fn with_gossip(mut self, fanout: usize, processors: usize, seed: u64) -> Self {
        self.gossip = Some(Gossip {
            fanout,
            processors,
            rng: StdRng::seed_from_u64(seed),
        });
        self
    }

    /// This processor's knowledge of complete jobs.
    #[must_use]
    pub fn knowledge(&self) -> &DoneSet {
        &self.done
    }

    /// Selects the next job not known complete, or `None` if the local
    /// list is exhausted.
    fn select(&mut self) -> Option<JobId> {
        match &mut self.selector {
            Selector::Schedule { order, position } => {
                let n = self.job_map.job_count();
                while *position < n {
                    let job = order.apply(*position);
                    *position += 1;
                    if !self.done.contains(doall_core::TaskId::new(job)) {
                        return Some(JobId::new(job));
                    }
                }
                None
            }
            Selector::Uniform { rng } => {
                let remaining = self.job_map.job_count() - self.done.known_done();
                if remaining == 0 {
                    return None;
                }
                let k = rng.random_range(0..remaining);
                self.done.unknown().nth(k).map(|t| JobId::new(t.index()))
            }
        }
    }
}

impl DoAllProcess for PaProcess {
    fn pid(&self) -> ProcId {
        self.pid
    }

    fn step(&mut self, inbox: &[Message]) -> StepOutcome {
        // Merge received knowledge (free within the step) straight from
        // the shared payloads — no copies.
        for msg in inbox {
            self.done.merge_bits(msg.bits());
        }

        // A job in progress is the atomic scheduling unit: finish it even
        // if we meanwhile learn it is done elsewhere (the analysis charges
        // its full O(t/p) cost to the selection).
        if self.current.is_none() {
            let Some(job) = self.select() else {
                return StepOutcome::internal();
            };
            self.current = Some((job, self.job_map.cursor(job)));
        }

        // lint:allow(H001) — invariant: `self.current` was filled two lines up
        let (job, cursor) = self.current.as_mut().expect("set above");
        // lint:allow(H001) — invariant: `self.current` is set to None the step it exhausts
        let task = cursor.next_task().expect("cursor cleared when exhausted");
        if cursor.is_finished() {
            let job = *job;
            self.current = None;
            self.done.record(doall_core::TaskId::new(job.index()));
            // Share the updated knowledge (Fig. 4: perform, then
            // broadcast(done)); one send per completed job — to everyone,
            // or to a random gossip subset when throttled.
            let bits = self.done.as_bits().clone();
            let me = self.pid;
            if let Some(g) = self.gossip.as_mut() {
                let targets = g.targets(me);
                return StepOutcome::perform_and_multicast(task, bits, targets);
            }
            return StepOutcome::perform_and_broadcast(task, bits);
        }
        StepOutcome::perform(task)
    }

    fn knows_all_done(&self) -> bool {
        self.done.all_done() && self.current.is_none()
    }

    fn clone_box(&self) -> Box<dyn DoAllProcess> {
        Box::new(self.clone())
    }
}

/// Factory for **PaRan1**: a uniformly random local schedule per
/// processor, drawn up front (Fig. 4 lines 40–44).
#[derive(Debug, Clone, Copy)]
pub struct PaRan1 {
    seed: u64,
}

impl PaRan1 {
    /// Creates the factory; `seed` determines every processor's schedule.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl Algorithm for PaRan1 {
    fn name(&self) -> String {
        "PaRan1".to_string()
    }

    fn spawn(&self, instance: Instance) -> Vec<Box<dyn DoAllProcess>> {
        let n = instance.units();
        (0..instance.processors())
            .map(|pid| {
                let mut rng = StdRng::seed_from_u64(per_proc_seed(self.seed, pid));
                let order = Arc::new(Permutation::random(n, &mut rng));
                Box::new(PaProcess::new(
                    pid,
                    instance,
                    Selector::Schedule { order, position: 0 },
                )) as Box<dyn DoAllProcess>
            })
            .collect()
    }
}

/// Factory for **PaRan2**: tasks left unordered; every selection is
/// uniform over the jobs not yet known complete (Fig. 4 lines 50–52).
///
/// Same expected work as PaRan1, far fewer random bits.
#[derive(Debug, Clone, Copy)]
pub struct PaRan2 {
    seed: u64,
}

impl PaRan2 {
    /// Creates the factory; `seed` drives every processor's draws.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl Algorithm for PaRan2 {
    fn name(&self) -> String {
        "PaRan2".to_string()
    }

    fn spawn(&self, instance: Instance) -> Vec<Box<dyn DoAllProcess>> {
        (0..instance.processors())
            .map(|pid| {
                let rng = StdRng::seed_from_u64(per_proc_seed(self.seed, pid));
                Box::new(PaProcess::new(pid, instance, Selector::Uniform { rng }))
                    as Box<dyn DoAllProcess>
            })
            .collect()
    }
}

/// Factory for **PaDet**: processor `pid` follows the fixed schedule
/// `π_{pid}` from a list `Σ` of permutations of the job set (Fig. 4 lines
/// 60–64).
///
/// With a list satisfying Corollary 4.5 the Cor 6.5 work bound holds
/// deterministically. Construct such lists with
/// [`Schedules::random`] (Theorem 4.4 makes random lists good with
/// overwhelming probability) or pass a hand-built list.
#[derive(Debug, Clone)]
pub struct PaDet {
    schedules: Arc<Schedules>,
}

impl PaDet {
    /// Creates the factory from an explicit schedule list. If the list has
    /// fewer entries than processors, processor `pid` uses
    /// `π_{pid mod |Σ|}` (the paper's grouping device).
    #[must_use]
    pub fn new(schedules: Schedules) -> Self {
        Self {
            schedules: Arc::new(schedules),
        }
    }

    /// Convenience: a random list of `p` schedules over the job set of
    /// `instance` — the Corollary 4.5 construction.
    #[must_use]
    pub fn random_for(instance: Instance, seed: u64) -> Self {
        Self::new(Schedules::random(
            instance.processors(),
            instance.units(),
            seed,
        ))
    }

    /// The schedule list `Σ`.
    #[must_use]
    pub fn schedules(&self) -> &Schedules {
        &self.schedules
    }
}

/// Factory for **PaGossip**: PaRan1's random local schedules, but each
/// job-completion message goes to only `fanout` random peers instead of
/// all `p − 1`.
///
/// This is an *extension* beyond the paper (its §7 lists controlling work
/// and message complexity simultaneously as future work, citing the
/// gossip approach of Georgiou–Kowalski–Shvartsman): message complexity
/// drops from `(p−1)` to `fanout` per completion, at the price of slower
/// knowledge dissemination and hence more redundant work. Experiment E14
/// maps the trade-off.
#[derive(Debug, Clone, Copy)]
pub struct PaGossip {
    seed: u64,
    fanout: usize,
}

impl PaGossip {
    /// Creates the factory with the given gossip fanout (`≥ 1`; values
    /// `≥ p − 1` degenerate to PaRan1's broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `fanout == 0` (a silent processor cannot help anyone;
    /// use [`crate::SoloAll`] to study the no-communication extreme).
    #[must_use]
    pub fn new(seed: u64, fanout: usize) -> Self {
        assert!(fanout >= 1, "gossip fanout must be at least 1");
        Self { seed, fanout }
    }

    /// The configured fanout.
    #[must_use]
    pub fn fanout(&self) -> usize {
        self.fanout
    }
}

impl Algorithm for PaGossip {
    fn name(&self) -> String {
        format!("PaGossip(f={})", self.fanout)
    }

    fn spawn(&self, instance: Instance) -> Vec<Box<dyn DoAllProcess>> {
        let n = instance.units();
        let p = instance.processors();
        (0..p)
            .map(|pid| {
                let mut rng = StdRng::seed_from_u64(per_proc_seed(self.seed, pid));
                let order = Arc::new(Permutation::random(n, &mut rng));
                Box::new(
                    PaProcess::new(pid, instance, Selector::Schedule { order, position: 0 })
                        .with_gossip(self.fanout, p, per_proc_seed(self.seed ^ 0xA5A5_A5A5, pid)),
                ) as Box<dyn DoAllProcess>
            })
            .collect()
    }
}

impl Algorithm for PaDet {
    fn name(&self) -> String {
        "PaDet".to_string()
    }

    fn spawn(&self, instance: Instance) -> Vec<Box<dyn DoAllProcess>> {
        assert_eq!(
            self.schedules.n(),
            instance.units(),
            "schedule list is over [{}] but the instance has {} jobs",
            self.schedules.n(),
            instance.units()
        );
        (0..instance.processors())
            .map(|pid| {
                let order = Arc::new(self.schedules.get(pid % self.schedules.len()).clone());
                Box::new(PaProcess::new(
                    pid,
                    instance,
                    Selector::Schedule { order, position: 0 },
                )) as Box<dyn DoAllProcess>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_solo(mut proc_: Box<dyn DoAllProcess>, limit: u64) -> Vec<usize> {
        let mut performed = Vec::new();
        let mut steps = 0;
        while !proc_.knows_all_done() {
            if let Some(z) = proc_.step(&[]).performed {
                performed.push(z.index());
            }
            steps += 1;
            assert!(steps < limit, "diverged");
        }
        performed
    }

    #[test]
    fn pa_det_follows_its_schedule() {
        let sched = Schedules::from_perms(vec![Permutation::from_image(vec![3, 1, 0, 2]).unwrap()])
            .unwrap();
        let inst = Instance::new(4, 4).unwrap();
        let mut procs = PaDet::new(sched).spawn(inst);
        let order: Vec<usize> = (0..4)
            .map(|_| procs[0].step(&[]).performed.unwrap().index())
            .collect();
        assert_eq!(order, vec![3, 1, 0, 2]);
        assert!(procs[0].knows_all_done());
    }

    #[test]
    fn every_variant_completes_solo() {
        let inst = Instance::new(1, 12).unwrap();
        for algo in [
            Box::new(PaRan1::new(1)) as Box<dyn Algorithm>,
            Box::new(PaRan2::new(1)),
            Box::new(PaDet::random_for(inst, 1)),
        ] {
            let procs = algo.spawn(inst);
            let mut performed = run_solo(procs.into_iter().next().unwrap(), 1000);
            performed.sort_unstable();
            assert_eq!(performed, (0..12).collect::<Vec<_>>(), "{}", algo.name());
        }
    }

    #[test]
    fn job_clustering_performs_all_tasks() {
        // p = 3, t = 10 → 3 jobs; a solo processor still performs all 10
        // tasks.
        let inst = Instance::new(3, 10).unwrap();
        let procs = PaRan1::new(7).spawn(inst);
        let mut performed = run_solo(procs.into_iter().next().unwrap(), 1000);
        performed.sort_unstable();
        assert_eq!(performed, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn merging_knowledge_prunes_jobs() {
        let inst = Instance::new(2, 4).unwrap();
        let mut procs = PaDet::random_for(inst, 3).spawn(inst);
        // Run proc 1 to completion; keep its final knowledge broadcast.
        let mut last_bits = None;
        while !procs[1].knows_all_done() {
            if let Some(b) = procs[1].step(&[]).broadcast {
                last_bits = Some(b);
            }
        }
        let msg = Message::new(ProcId::new(1), last_bits.unwrap());
        let o = procs[0].step(std::slice::from_ref(&msg));
        assert!(procs[0].knows_all_done());
        assert_eq!(o.performed, None, "no work after learning everything");
    }

    #[test]
    fn broadcast_accompanies_each_job_completion() {
        let inst = Instance::new(5, 5).unwrap(); // 5 single-task jobs
        let mut procs = PaRan2::new(9).spawn(inst);
        let mut broadcasts = 0;
        while !procs[0].knows_all_done() {
            if procs[0].step(&[]).broadcast.is_some() {
                broadcasts += 1;
            }
        }
        assert_eq!(broadcasts, 5, "one broadcast per completed job");
    }

    #[test]
    fn ran1_differs_across_processors_ran2_reproducible() {
        let inst = Instance::new(4, 16).unwrap();
        let mut a = PaRan1::new(5).spawn(inst);
        let firsts: Vec<usize> = a
            .iter_mut()
            .map(|p| p.step(&[]).performed.unwrap().index())
            .collect();
        let mut uniq = firsts.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() > 1, "random schedules diverge: {firsts:?}");

        let run = |seed| {
            let procs = PaRan2::new(seed).spawn(inst);
            procs
                .into_iter()
                .map(|p| run_solo(p, 10_000))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(8), run(8), "seeded reproducibility");
    }

    #[test]
    fn mid_job_completion_is_atomic() {
        // 1 processor, 2 jobs of 3 tasks; learning mid-job must not abort
        // the cursor.
        let inst = Instance::new(2, 6).unwrap();
        let mut procs = PaDet::random_for(inst, 0).spawn(inst);
        let proc_ = &mut procs[0];
        // Step once (first task of first job).
        let first = proc_.step(&[]).performed.unwrap();
        // Tell it everything is done.
        let mut all = DoneSet::new(2);
        all.record(doall_core::TaskId::new(0));
        all.record(doall_core::TaskId::new(1));
        let msg = Message::new(ProcId::new(1), all.as_bits().clone());
        // The in-progress job finishes (2 more tasks of the same job).
        let second = proc_.step(std::slice::from_ref(&msg)).performed.unwrap();
        let third = proc_.step(&[]).performed.unwrap();
        let job = inst.job_map().job_of(first);
        assert_eq!(inst.job_map().job_of(second), job);
        assert_eq!(inst.job_map().job_of(third), job);
        // After the atomic job, knowledge says everything is done.
        assert!(proc_.knows_all_done());
    }

    #[test]
    fn gossip_targets_are_distinct_valid_peers() {
        let mut g = Gossip {
            fanout: 3,
            processors: 8,
            rng: StdRng::seed_from_u64(5),
        };
        for me in [0usize, 3, 7] {
            for _ in 0..50 {
                let ts = g.targets(ProcId::new(me));
                assert_eq!(ts.len(), 3);
                let mut uniq: Vec<usize> = ts.iter().map(|p| p.index()).collect();
                uniq.sort_unstable();
                uniq.dedup();
                assert_eq!(uniq.len(), 3, "distinct");
                assert!(uniq.iter().all(|&p| p < 8 && p != me), "valid peers");
            }
        }
    }

    #[test]
    fn gossip_fanout_caps_at_p_minus_one() {
        let mut g = Gossip {
            fanout: 100,
            processors: 4,
            rng: StdRng::seed_from_u64(1),
        };
        let ts = g.targets(ProcId::new(2));
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn pagossip_completes_and_sends_fanout_messages() {
        let inst = Instance::new(6, 6).unwrap();
        let algo = PaGossip::new(3, 2);
        assert_eq!(algo.fanout(), 2);
        assert_eq!(algo.name(), "PaGossip(f=2)");
        let mut procs = algo.spawn(inst);
        // Solo processor: every completion multicasts to exactly 2 peers.
        let mut performed = Vec::new();
        while !procs[0].knows_all_done() {
            let o = procs[0].step(&[]);
            if let Some(z) = o.performed {
                performed.push(z.index());
                let targets = o.targets.expect("gossip always targets explicitly");
                assert_eq!(targets.len(), 2);
            }
        }
        performed.sort_unstable();
        assert_eq!(performed, (0..6).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "fanout must be at least 1")]
    fn pagossip_zero_fanout_rejected() {
        let _ = PaGossip::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "schedule list is over")]
    fn padet_wrong_size_panics() {
        let sched = Schedules::random(2, 3, 0);
        let _ = PaDet::new(sched).spawn(Instance::new(2, 2).unwrap());
    }
}
